#include "serve/adapt.hpp"

#include "features/global.hpp"
#include "hw/analytic.hpp"
#include "obs/json.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/residuals.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <utility>

namespace powerlens::serve {

namespace {

// Adaptation records live above the per-request sequence range (request = 1,
// attempts = 2..): the epoch summary sits at 32 and re-plan records follow,
// all keyed on the epoch's last task id, so the journal's per-thread
// (run, task, seq) monotonicity holds across the fold thread's interleaved
// request and adaptation appends.
constexpr std::uint32_t kSeqAdaptEpoch = 32;

// Single-epoch correction ratios and the cumulative composition are both
// clamped: a pathological residual (e.g. a near-zero prediction) must never
// drive the rescaled cost table to a degenerate argmin.
constexpr double kMinStepScale = 0.1;
constexpr double kMaxStepScale = 10.0;
constexpr double kMinCumScale = 0.05;
constexpr double kMaxCumScale = 20.0;

// The residual key form for a plan signature (mirrors serve/server.cpp).
std::string hex_signature(std::uint64_t sig) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(sig));
  return buf;
}

double clamp_scale(double v, double lo, double hi) {
  if (!std::isfinite(v)) return 1.0;
  return std::clamp(v, lo, hi);
}

}  // namespace

AdaptController::AdaptController(const hw::Platform& platform,
                                 std::span<const DeployedModel> models,
                                 std::span<const std::uint64_t> model_sigs,
                                 const core::PowerLens& framework,
                                 AdaptConfig config)
    : platform_(&platform),
      models_(models),
      model_sigs_(model_sigs),
      config_(config),
      active_(std::make_shared<core::PowerLens>(framework)) {
  if (config_.epoch_tasks == 0) {
    throw std::invalid_argument("AdaptController: epoch_tasks == 0");
  }
  if (models_.size() != model_sigs_.size()) {
    throw std::invalid_argument(
        "AdaptController: models/signatures size mismatch");
  }
  time_scale_.assign(models_.size(), 1.0);
  energy_scale_.assign(models_.size(), 1.0);
  base_plans_.resize(models_.size());
  cost_features_.resize(models_.size());
  scored_at_replan_.assign(models_.size(), 0);
}

AdaptController::~AdaptController() {
  if (retrain_thread_.joinable()) retrain_thread_.join();
}

void AdaptController::maybe_swap_retrained() {
  if (!retrain_inflight_) return;
  // The boundary runs with every worker joined, so blocking here until the
  // refit finishes keeps the swap epoch — and therefore every plan computed
  // afterwards — a pure function of the request stream.
  retrain_thread_.join();
  active_ = std::move(candidate_);
  candidate_.reset();
  retrain_inflight_ = false;
  ++model_swaps_;
  obs::global_metrics()
      .counter("powerlens_adapt_model_swaps_total",
               "retrained model bundles swapped in at epoch boundaries")
      .inc();
}

void AdaptController::maybe_launch_retrain() {
  if (!config_.retrain || retrain_inflight_) return;
  const std::size_t min_rows = std::max<std::size_t>(config_.retrain_min_rows,
                                                     std::size_t{10});
  if (row_labels_.size() < min_rows) return;
  if (!active_->trained()) return;

  nn::Dataset rows;
  rows.structural.reshape(row_labels_.size(), row_structural_.front().size());
  rows.statistics.reshape(row_labels_.size(), row_statistics_.front().size());
  for (std::size_t r = 0; r < row_labels_.size(); ++r) {
    for (std::size_t c = 0; c < row_structural_[r].size(); ++c) {
      rows.structural(r, c) = row_structural_[r][c];
    }
    for (std::size_t c = 0; c < row_statistics_[r].size(); ++c) {
      rows.statistics(r, c) = row_statistics_[r][c];
    }
  }
  rows.labels = row_labels_;
  row_structural_.clear();
  row_statistics_.clear();
  row_labels_.clear();

  // Short incremental schedule: the refit continues from the deployed
  // weights, so a handful of epochs over the harvested slice is the whole
  // point — anything longer would overfit the online distribution.
  nn::TrainConfig cfg;
  cfg.epochs = 12;
  cfg.batch_size = 16;
  cfg.lr = 5e-4;
  cfg.patience = 4;
  cfg.shuffle_seed = config_.seed + retrain_rounds_;
  const std::uint64_t split_seed = config_.seed + 1000 + retrain_rounds_;

  candidate_ = std::make_shared<core::PowerLens>(*active_);
  std::shared_ptr<core::PowerLens> target = candidate_;
  retrain_thread_ = std::thread([target, rows = std::move(rows), cfg,
                                 split_seed]() {
    try {
      target->refit_decision(rows, cfg, split_seed);
    } catch (const std::exception&) {
      // A failed refit leaves `target` an untouched copy of the bundle it
      // started from; swapping it in is a no-op, never a corruption.
    }
  });
  retrain_inflight_ = true;
  ++retrain_rounds_;
}

void AdaptController::on_epoch_boundary(const EpochContext& ctx) {
  ++epochs_;
  obs::MetricsRegistry& metrics = obs::global_metrics();
  metrics
      .counter("powerlens_adapt_epochs_total",
               "serving adaptation epoch boundaries crossed")
      .inc();

  maybe_swap_retrained();

  struct Pending {
    std::size_t model = 0;
    double latency_ewma = 0.0;
    double energy_ewma = 0.0;
  };
  std::vector<Pending> pending;
  std::vector<core::ReplanRequest> requests;
  std::size_t drifting_models = 0;

  if (ctx.residuals != nullptr && ctx.cache != nullptr) {
    const std::vector<obs::Residuals::KeySnapshot> snap =
        ctx.residuals->snapshot();
    for (std::size_t m = 0; m < models_.size(); ++m) {
      const obs::Residuals::KeySnapshot* model_key = nullptr;
      const obs::Residuals::KeySnapshot* sig_key = nullptr;
      for (const obs::Residuals::KeySnapshot& k : snap) {
        if (k.policy != ctx.policy || k.model != models_[m].name) continue;
        if (k.signature == 0) {
          model_key = &k;
        } else if (k.signature == model_sigs_[m]) {
          sig_key = &k;
        }
      }
      const bool drifting = (model_key != nullptr && model_key->drifting) ||
                            (sig_key != nullptr && sig_key->drifting);
      if (!drifting) continue;
      ++drifting_models;

      // Prefer the signature-level series: it scores only plan-served
      // requests, while the model-level series also absorbs fallen-back
      // executions whose error the re-plan cannot fix.
      const obs::Residuals::Stats* stats = nullptr;
      if (sig_key != nullptr && (sig_key->stats.latency.count > 0 ||
                                 sig_key->stats.energy.count > 0)) {
        stats = &sig_key->stats;
      } else if (model_key != nullptr) {
        stats = &model_key->stats;
      }
      if (stats == nullptr) continue;

      // Re-plan only on fresh evidence: once a correction is installed, the
      // flag stays up until the EWMA decays below threshold, and re-applying
      // the same stale EWMA every boundary would compound one observation
      // into an overshoot.
      const std::uint64_t scored =
          stats->latency.count + stats->energy.count;
      if (scored <= scored_at_replan_[m]) continue;
      scored_at_replan_[m] = scored;

      const double lat_ewma =
          stats->latency.count > 0 ? stats->latency.ewma : 0.0;
      const double eng_ewma =
          stats->energy.count > 0 ? stats->energy.ewma : 0.0;
      time_scale_[m] = clamp_scale(
          time_scale_[m] *
              clamp_scale(1.0 + lat_ewma, kMinStepScale, kMaxStepScale),
          kMinCumScale, kMaxCumScale);
      energy_scale_[m] = clamp_scale(
          energy_scale_[m] *
              clamp_scale(1.0 + eng_ewma, kMinStepScale, kMaxStepScale),
          kMinCumScale, kMaxCumScale);

      // Thermal headroom observed this epoch caps the re-pick: scheduling
      // levels the throttled ladder will strip anyway only re-creates the
      // prediction error being corrected.
      std::size_t cap = std::numeric_limits<std::size_t>::max();
      if (ctx.faults != nullptr && m < ctx.observations.size()) {
        const EpochObservation& ob = ctx.observations[m];
        if (ctx.faults->thermal_levels_off > 0 &&
            (ob.thermal_events > 0 || ob.throttled_s > 0.0)) {
          const std::size_t off =
              std::min(ctx.faults->thermal_levels_off,
                       platform_->max_gpu_level());
          cap = platform_->max_gpu_level() - off;
        }
      }

      // Corrections always compose against the STATIC plan the model
      // deployed with, captured once — composing against an already
      // corrected plan would square the scale factors.
      if (!base_plans_[m].has_value()) {
        if (PlanCache::PlanPtr cached = ctx.cache->lookup(models_[m].graph)) {
          base_plans_[m] = *cached;
        } else {
          base_plans_[m] = active_->optimize(models_[m].graph);
        }
      }

      // Per-layer cost features are a pure function of (platform, graph):
      // extract once at the model's first re-plan, share every epoch after.
      if (!cost_features_[m].has_value()) {
        cost_features_[m] =
            hw::CostFeatures::extract(*platform_, models_[m].graph.layers());
      }

      core::ReplanRequest req;
      req.graph = &models_[m].graph;
      req.base = &*base_plans_[m];
      req.cost_features = &*cost_features_[m];
      req.signals.time_scale = time_scale_[m];
      req.signals.energy_scale = energy_scale_[m];
      req.signals.gpu_level_cap = cap;
      req.signals.inter_pass_gap_s = ctx.inter_pass_gap_s;
      requests.push_back(req);
      pending.push_back({m, lat_ewma, eng_ewma});
    }
  }

  std::vector<core::OptimizationPlan> plans;
  if (!requests.empty()) {
    const auto t0 = std::chrono::steady_clock::now();
    plans = active_->replan_batch(requests);
    const double replan_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
    replan_latencies_ms_.push_back(replan_ms);
    metrics
        .histogram("powerlens_adapt_replan_ms",
                   obs::default_milliseconds_buckets(),
                   "wall-clock of one epoch's replan_batch call")
        .observe(replan_ms);
    for (std::size_t i = 0; i < plans.size(); ++i) {
      const std::size_t m = pending[i].model;
      ctx.cache->invalidate(model_sigs_[m]);
      ctx.cache->install(model_sigs_[m],
                         std::make_shared<const core::OptimizationPlan>(
                             plans[i]));
      ++replans_;

      // Harvest decision-model rows: the corrected table's per-block argmin
      // is the label the offline model should have predicted under the
      // observed conditions.
      const auto& blocks = plans[i].view.blocks();
      for (std::size_t b = 0; b < blocks.size(); ++b) {
        const features::GlobalFeatures f = features::GlobalFeatureExtractor::
            extract(models_[m].graph, blocks[b].begin, blocks[b].end);
        row_structural_.push_back(f.structural);
        row_statistics_.push_back(f.statistics);
        row_labels_.push_back(static_cast<int>(plans[i].block_levels[b]));
      }
    }
    metrics
        .counter("powerlens_adapt_replans_total",
                 "drift-triggered online plan recomputations")
        .inc(static_cast<double>(plans.size()));
  }
  metrics
      .gauge("powerlens_adapt_drifting_models_count",
             "deployed models flagged drifting at the last epoch boundary")
      .set(static_cast<double>(drifting_models));

  if (ctx.journal != nullptr) {
    obs::JsonWriter w;
    w.field("epoch", static_cast<double>(epochs_));
    w.field("drifting_models", static_cast<double>(drifting_models));
    w.field("replans", static_cast<double>(plans.size()));
    w.field("model_swaps", static_cast<double>(model_swaps_));
    ctx.journal->append(ctx.run_id, ctx.last_task_id, kSeqAdaptEpoch,
                        "adapt_epoch", w.body());
    for (std::size_t i = 0; i < plans.size(); ++i) {
      const std::size_t m = pending[i].model;
      obs::JsonWriter r;
      r.field("model", models_[m].name);
      r.field("plan_signature", hex_signature(model_sigs_[m]));
      r.field("time_scale", time_scale_[m]);
      r.field("energy_scale", energy_scale_[m]);
      r.field("latency_ewma", pending[i].latency_ewma);
      r.field("energy_ewma", pending[i].energy_ewma);
      if (requests[i].signals.gpu_level_cap !=
          std::numeric_limits<std::size_t>::max()) {
        r.field("gpu_level_cap",
                static_cast<double>(requests[i].signals.gpu_level_cap));
      }
      ctx.journal->append(ctx.run_id, ctx.last_task_id,
                          kSeqAdaptEpoch + 1 + static_cast<std::uint32_t>(i),
                          "adapt_replan", r.body());
    }
  }

  const std::uint64_t rounds_before = retrain_rounds_;
  maybe_launch_retrain();
  if (retrain_rounds_ > rounds_before) {
    metrics
        .counter("powerlens_adapt_retrain_rounds_total",
                 "background decision-model refits launched")
        .inc();
  }
}

}  // namespace powerlens::serve
