// Stable structural signature of a DNN graph, the PlanCache key.
//
// Two graphs with identical layer sequences (types, shapes, cost attributes,
// deep attributes), identical edges, and identical names hash to the same
// 64-bit value — rebuilding the same zoo model at the same batch size always
// reproduces the signature, across processes and platforms (the hash folds
// only integral fields and bytes, never doubles or pointers). The optimizer
// is a pure function of the graph for a trained framework, so equal
// signatures imply equal optimization plans.
#pragma once

#include "dnn/graph.hpp"

#include <cstdint>

namespace powerlens::serve {

// FNV-1a 64-bit accumulator; exposed so tests can fold custom prefixes.
inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

constexpr std::uint64_t fnv1a_byte(std::uint64_t h, unsigned char b) noexcept {
  return (h ^ b) * kFnvPrime;
}

constexpr std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h = fnv1a_byte(h, static_cast<unsigned char>(v >> (8 * i)));
  }
  return h;
}

// Signature of a whole graph (name, every layer, every edge).
std::uint64_t graph_signature(const dnn::Graph& graph);

}  // namespace powerlens::serve
