// Model population from a directory of serialized graphs.
//
// The export half of the binary interchange (src/io) writes one .plbin graph
// record per model; this loader turns such a directory back into the
// DeployedModel list a Server is constructed with. Filenames become model
// names (stem only), and files are loaded in lexicographic filename order so
// the population — and therefore every downstream signature, report, and
// journal — is deterministic regardless of directory enumeration order.
#pragma once

#include "serve/server.hpp"

#include <string>
#include <vector>

namespace powerlens::serve {

// Loads every `*.plbin` file in `dir` (non-recursive) as a graph record and
// returns the models sorted by filename. The model name is the filename
// without the extension. Throws std::invalid_argument when `dir` is not a
// directory or contains no .plbin files, and io::Error when any file is not
// a valid graph record — a model population with silently missing members is
// worse than no population.
std::vector<DeployedModel> load_model_population(const std::string& dir);

}  // namespace powerlens::serve
