#include "serve/model_dir.hpp"

#include "io/interchange.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

namespace powerlens::serve {

std::vector<DeployedModel> load_model_population(const std::string& dir) {
  namespace fs = std::filesystem;
  const fs::path root(dir);
  if (!fs::is_directory(root)) {
    throw std::invalid_argument("load_model_population: not a directory: " +
                                dir);
  }
  std::vector<fs::path> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(root)) {
    if (entry.is_regular_file() && entry.path().extension() == ".plbin") {
      files.push_back(entry.path());
    }
  }
  if (files.empty()) {
    throw std::invalid_argument("load_model_population: no .plbin files in " +
                                dir);
  }
  // Sort by filename, not full path: stable across differently spelled
  // paths to the same directory.
  std::sort(files.begin(), files.end(),
            [](const fs::path& a, const fs::path& b) {
              return a.filename().string() < b.filename().string();
            });
  std::vector<DeployedModel> models;
  models.reserve(files.size());
  for (const fs::path& file : files) {
    models.push_back(DeployedModel{file.stem().string(),
                                   io::load_graph(file.string())});
  }
  return models;
}

}  // namespace powerlens::serve
