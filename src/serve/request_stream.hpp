// Seeded, deterministic request-stream generator for the serving layer.
//
// A task flow (the paper's Figure 5 scenario, scaled toward a real serving
// workload) is a sequence of inference tasks {model, images, arrival time,
// optional deadline}. Generation is a pure function of the config: model
// picks are drawn first from one generator and arrival times from a second
// generator split off the same seed, so the model sequence for a given seed
// is identical whether arrivals are closed-loop or Poisson — the property
// that lets one stream be replayed under every policy and arrival regime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace powerlens::serve {

enum class ArrivalProcess {
  kClosedLoop,  // all tasks queued at t = 0, device always backlogged
  kPoisson,     // exponential inter-arrival times at arrival_rate_hz
};

struct RequestStreamConfig {
  std::uint64_t seed = 7;
  std::size_t num_tasks = 100;
  ArrivalProcess arrivals = ArrivalProcess::kClosedLoop;
  double arrival_rate_hz = 0.0;  // mean task arrivals per simulated second
  int images_per_task = 50;      // images each task processes
  std::int64_t batch = 10;       // images per forward pass
  // Relative deadline applied to every task (seconds after arrival);
  // 0 disables deadline accounting.
  double deadline_s = 0.0;
};

struct Task {
  std::size_t id = 0;           // position in the stream (arrival order)
  std::size_t model_index = 0;  // into the server's deployed-model list
  int passes = 1;               // forward passes (images = passes * batch)
  double arrival_s = 0.0;       // simulated arrival time
  double deadline_s = 0.0;      // relative deadline; 0 = none
};

class RequestStream {
 public:
  // `num_models` is the size of the deployed-model list tasks index into.
  // Throws std::invalid_argument on zero models, a non-positive batch or
  // images count, or a Poisson config without a positive rate.
  RequestStream(std::size_t num_models, RequestStreamConfig config);

  // The full task sequence, sorted by arrival time (ids break ties).
  // Deterministic: same config, same tasks, bit for bit.
  std::vector<Task> generate() const;

  const RequestStreamConfig& config() const noexcept { return config_; }
  std::size_t num_models() const noexcept { return num_models_; }

 private:
  std::size_t num_models_;
  RequestStreamConfig config_;
};

}  // namespace powerlens::serve
