#include "features/global.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace powerlens::features {

namespace {

double safe_log1p(double v) { return std::log1p(std::max(v, 0.0)); }

}  // namespace

std::vector<double> GlobalFeatures::flat() const {
  std::vector<double> out;
  out.reserve(structural.size() + statistics.size());
  out.insert(out.end(), structural.begin(), structural.end());
  out.insert(out.end(), statistics.begin(), statistics.end());
  return out;
}

GlobalFeatures GlobalFeatureExtractor::extract(const dnn::Graph& graph) {
  return extract(graph, 0, graph.size());
}

GlobalFeatures GlobalFeatureExtractor::extract(const dnn::Graph& graph,
                                               std::size_t begin,
                                               std::size_t end) {
  if (begin >= end || end > graph.size()) {
    throw std::invalid_argument("GlobalFeatureExtractor: bad layer range");
  }
  const std::size_t n = end - begin;

  // --- Structural facet -----------------------------------------------------
  std::vector<double> op_hist(dnn::kNumOpTypes, 0.0);
  std::size_t residuals = 0;
  std::size_t concats = 0;
  std::size_t branches = 0;
  std::size_t attention_layers = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const dnn::Layer& l = graph.layer(i);
    op_hist[static_cast<std::size_t>(l.type)] += 1.0;
    if (l.type == dnn::OpType::kAdd) ++residuals;
    if (l.type == dnn::OpType::kConcat) ++concats;
    if (l.type == dnn::OpType::kMultiHeadAttention) ++attention_layers;
    // A branch point inside the range: >1 consumers within [begin, end).
    std::size_t in_range_consumers = 0;
    for (dnn::NodeId c : graph.consumers(i)) {
      if (c >= begin && c < end) ++in_range_consumers;
    }
    if (in_range_consumers > 1) ++branches;
  }
  for (double& h : op_hist) h /= static_cast<double>(n);

  GlobalFeatures g;
  g.structural.reserve(kStructuralDim);
  g.structural.push_back(safe_log1p(static_cast<double>(n)));
  g.structural.push_back(
      safe_log1p(static_cast<double>(graph.depth())));  // network depth
  g.structural.push_back(safe_log1p(static_cast<double>(residuals)));
  g.structural.push_back(safe_log1p(static_cast<double>(concats)));
  g.structural.push_back(safe_log1p(static_cast<double>(branches)));
  g.structural.push_back(safe_log1p(static_cast<double>(attention_layers)));
  g.structural.push_back(
      safe_log1p(static_cast<double>(graph.batch_size())));
  g.structural.insert(g.structural.end(), op_hist.begin(), op_hist.end());

  // --- Statistics facet -------------------------------------------------------
  double flops = 0.0;
  double params = 0.0;
  double mem = 0.0;
  double compute_flops = 0.0;
  double max_layer_flops = 0.0;
  double ai_sum = 0.0;
  double ai_max = 0.0;
  std::size_t compute_ops = 0;
  std::size_t memory_ops = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const dnn::Layer& l = graph.layer(i);
    const double lf = static_cast<double>(l.flops);
    flops += lf;
    params += static_cast<double>(l.params);
    mem += static_cast<double>(l.mem_bytes);
    max_layer_flops = std::max(max_layer_flops, lf);
    const double ai = l.arithmetic_intensity();
    ai_sum += ai;
    ai_max = std::max(ai_max, ai);
    if (dnn::is_compute_op(l.type)) {
      ++compute_ops;
      compute_flops += lf;
    }
    if (dnn::is_memory_op(l.type)) ++memory_ops;
  }

  g.statistics.reserve(kStatisticsDim);
  g.statistics.push_back(safe_log1p(flops));
  g.statistics.push_back(safe_log1p(params));
  g.statistics.push_back(safe_log1p(mem));
  g.statistics.push_back(safe_log1p(flops / static_cast<double>(n)));
  g.statistics.push_back(safe_log1p(max_layer_flops));
  g.statistics.push_back(safe_log1p(ai_sum / static_cast<double>(n)));
  g.statistics.push_back(safe_log1p(ai_max));
  // Overall arithmetic intensity of the range: the single strongest
  // predictor of the energy-optimal frequency.
  g.statistics.push_back(safe_log1p(mem > 0.0 ? flops / mem : 0.0));
  g.statistics.push_back(static_cast<double>(compute_ops) /
                         static_cast<double>(n));
  g.statistics.push_back(static_cast<double>(memory_ops) /
                         static_cast<double>(n));
  g.statistics.push_back(flops > 0.0 ? compute_flops / flops : 0.0);
  g.statistics.push_back(safe_log1p(static_cast<double>(n)));

  return g;
}

}  // namespace powerlens::features
