// Depthwise (fine-grained, layer-level) power-sensitive feature extraction —
// paper section 2.1.2, "Depthwise Feature Extractor".
//
// For every layer the extractor emits a fixed-width vector covering the
// attributes the paper lists: computational load, parameter count, memory
// access volume, operator type (one-hot), channel counts and feature-map
// dimensions, plus deep attributes for power-dominant operator classes
// (convolution kernel/stride/filters/groups; attention heads / matrix
// dimensions). Heavy-tailed magnitudes (FLOPs, bytes, params) enter as
// log1p so the Mahalanobis covariance is not dominated by a single layer.
#pragma once

#include "dnn/graph.hpp"
#include "linalg/matrix.hpp"

#include <span>
#include <string_view>
#include <vector>

namespace powerlens::features {

// Indices of the scalar block of the depthwise feature vector; the operator
// one-hot block follows at kOpTypeOffset.
enum DepthwiseIndex : std::size_t {
  kLogFlops = 0,
  kLogParams,
  kLogMemBytes,
  kLogArithmeticIntensity,
  kLogInChannels,
  kLogOutChannels,
  kLogFmapH,
  kLogFmapW,
  kKernelH,
  kKernelW,
  kStride,
  kLogGroups,
  kAttnHeads,
  kLogAttnHeadDim,
  kLogAttnSeqLen,
  kOpTypeOffset,  // one-hot block starts here
};

inline constexpr std::size_t kDepthwiseFeatureDim =
    kOpTypeOffset + dnn::kNumOpTypes;

class DepthwiseFeatureExtractor {
 public:
  // Feature vector of a single layer.
  static std::vector<double> extract(const dnn::Layer& layer);

  // Feature table of a whole graph: one row per layer, in execution order
  // (including the kInput row so row index == layer index).
  static linalg::Matrix extract(const dnn::Graph& graph);

  // Name of feature column `i`, for debugging and docs.
  static std::string_view feature_name(std::size_t i);
};

}  // namespace powerlens::features
