#include "features/depthwise.hpp"

#include <cmath>
#include <stdexcept>

namespace powerlens::features {

namespace {

double log1p_nonneg(double v) { return std::log1p(v < 0.0 ? 0.0 : v); }

}  // namespace

std::vector<double> DepthwiseFeatureExtractor::extract(
    const dnn::Layer& layer) {
  std::vector<double> f(kDepthwiseFeatureDim, 0.0);
  f[kLogFlops] = log1p_nonneg(static_cast<double>(layer.flops));
  f[kLogParams] = log1p_nonneg(static_cast<double>(layer.params));
  f[kLogMemBytes] = log1p_nonneg(static_cast<double>(layer.mem_bytes));
  f[kLogArithmeticIntensity] = log1p_nonneg(layer.arithmetic_intensity());
  f[kLogInChannels] = log1p_nonneg(static_cast<double>(layer.input.c));
  f[kLogOutChannels] = log1p_nonneg(static_cast<double>(layer.output.c));
  f[kLogFmapH] = log1p_nonneg(static_cast<double>(layer.output.h));
  f[kLogFmapW] = log1p_nonneg(static_cast<double>(layer.output.w));
  f[kKernelH] = static_cast<double>(layer.conv.kernel_h);
  f[kKernelW] = static_cast<double>(layer.conv.kernel_w);
  f[kStride] = static_cast<double>(layer.conv.stride);
  f[kLogGroups] = log1p_nonneg(static_cast<double>(layer.conv.groups));
  f[kAttnHeads] = static_cast<double>(layer.attn.heads);
  f[kLogAttnHeadDim] = log1p_nonneg(static_cast<double>(layer.attn.head_dim));
  f[kLogAttnSeqLen] = log1p_nonneg(static_cast<double>(layer.attn.seq_len));
  f[kOpTypeOffset + static_cast<std::size_t>(layer.type)] = 1.0;
  return f;
}

linalg::Matrix DepthwiseFeatureExtractor::extract(const dnn::Graph& graph) {
  if (graph.empty()) {
    throw std::invalid_argument("DepthwiseFeatureExtractor: empty graph");
  }
  linalg::Matrix table(graph.size(), kDepthwiseFeatureDim);
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const std::vector<double> row = extract(graph.layer(i));
    for (std::size_t c = 0; c < row.size(); ++c) table(i, c) = row[c];
  }
  return table;
}

std::string_view DepthwiseFeatureExtractor::feature_name(std::size_t i) {
  switch (i) {
    case kLogFlops: return "log_flops";
    case kLogParams: return "log_params";
    case kLogMemBytes: return "log_mem_bytes";
    case kLogArithmeticIntensity: return "log_arith_intensity";
    case kLogInChannels: return "log_in_channels";
    case kLogOutChannels: return "log_out_channels";
    case kLogFmapH: return "log_fmap_h";
    case kLogFmapW: return "log_fmap_w";
    case kKernelH: return "kernel_h";
    case kKernelW: return "kernel_w";
    case kStride: return "stride";
    case kLogGroups: return "log_groups";
    case kAttnHeads: return "attn_heads";
    case kLogAttnHeadDim: return "log_attn_head_dim";
    case kLogAttnSeqLen: return "log_attn_seq_len";
    default:
      if (i >= kOpTypeOffset && i < kDepthwiseFeatureDim) {
        return dnn::op_name(static_cast<dnn::OpType>(i - kOpTypeOffset));
      }
      return "unknown";
  }
}

}  // namespace powerlens::features
