// Global (coarse-grained) power-sensitive feature extraction — paper
// section 2.1.2, "Global Feature Extractor".
//
// Two facets, kept as separate vectors because the prediction models inject
// them at different network stages (Figure 3):
//   - structural: macro parameters of the topology — layer count, depth,
//     residual / concat / branch structure, operator-type histogram;
//   - statistics: aggregations of the fine-grained features — total FLOPs,
//     parameters, memory traffic, arithmetic-intensity statistics, and the
//     compute/memory operator proportions.
// The same extractor runs on a whole DNN (clustering-hyperparameter model
// input) and on a single power block (decision-model input) via the
// [begin, end) overloads.
#pragma once

#include "dnn/graph.hpp"

#include <vector>

namespace powerlens::features {

struct GlobalFeatures {
  std::vector<double> structural;
  std::vector<double> statistics;

  // Concatenation, for consumers that do not stage their inputs.
  std::vector<double> flat() const;
};

inline constexpr std::size_t kStructuralDim = 7 + dnn::kNumOpTypes;
inline constexpr std::size_t kStatisticsDim = 12;

class GlobalFeatureExtractor {
 public:
  // Whole-network features.
  static GlobalFeatures extract(const dnn::Graph& graph);

  // Features of the contiguous layer range [begin, end) — a power block.
  // Join/branch counts consider only layers inside the range.
  // Throws std::invalid_argument on an empty or out-of-bounds range.
  static GlobalFeatures extract(const dnn::Graph& graph, std::size_t begin,
                                std::size_t end);
};

}  // namespace powerlens::features
