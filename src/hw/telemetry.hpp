// tegrastats-equivalent power telemetry.
//
// The paper monitors real-time power with tegrastats and integrates it into
// energy; this class records (time, power) samples at a fixed period from
// the simulated power rail and exposes the same derived quantities.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace powerlens::hw {

class FaultModel;

struct PowerSample {
  double time_s = 0.0;
  double power_w = 0.0;
};

class Telemetry {
 public:
  explicit Telemetry(double period_s);

  // Integrates a constant-power slice [t, t + dt) into the sample stream;
  // emits one averaged sample per elapsed period.
  void record_slice(double t_start_s, double dt_s, double power_w);
  // Flushes a trailing partial period as a final sample, then always resets
  // the window accumulators — a record_slice after finish() (or a second
  // finish()) starts from a clean window, never merging stale energy.
  void finish(double end_time_s);

  // Optional fault model consulted per emitted sample; a dropped sample
  // vanishes from the stream (real tegrastats lines go missing under load)
  // while total_energy_j stays exact. Must outlive this object.
  void set_fault_model(FaultModel* model) noexcept { fault_model_ = model; }
  // Samples lost to the fault model.
  std::size_t dropped_samples() const noexcept { return dropped_; }

  std::span<const PowerSample> samples() const noexcept { return samples_; }
  double period_s() const noexcept { return period_s_; }

  // Mean of recorded samples (0 if none).
  double mean_power_w() const noexcept;

  // Maximum recorded sample (0 if none) — the rail's observed peak, the
  // signal thermal-drift accounting compares against sustained draw.
  double peak_power_w() const noexcept;

  // Exact integral of every recorded slice, including the sub-epsilon
  // slivers the round-off guard in record_slice keeps out of the sample
  // windows. This is the energy-conservation invariant: it equals the
  // engine's own power integral bit for bit (same products, same order).
  double total_energy_j() const noexcept { return total_energy_j_; }

 private:
  // Emits one averaged window sample, subject to fault-model dropouts.
  void emit_sample(double time_s, double power_w);

  double period_s_;
  double window_energy_j_ = 0.0;
  double window_elapsed_s_ = 0.0;
  double total_energy_j_ = 0.0;
  FaultModel* fault_model_ = nullptr;  // non-owning, may be null
  std::size_t emitted_ = 0;            // sample index for fault decisions
  std::size_t dropped_ = 0;
  std::vector<PowerSample> samples_;
};

}  // namespace powerlens::hw
