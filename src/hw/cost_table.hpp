// Memoized analytic costs for one graph: per-layer (time, energy) at every
// (gpu_level, cpu_level) pair, stored as prefix sums over the layer axis.
//
// The offline labelling sweeps (dataset generation, oracle planning) evaluate
// the same layer ranges at the same frequency levels thousands of times per
// network — enforce_min_block_duration re-times shrinking views per merge
// step, best_hyperparam_class sweeps a 24-point hyperparameter grid, and
// every block is swept across the whole GPU ladder. A CostTable pays the
// per-layer model evaluation exactly once per (layer, gpu, cpu) triple and
// then answers any contiguous block query in O(1) by prefix-sum subtraction.
//
// Accumulation order matches analytic_block_cost layer-by-layer, so a query
// starting at layer 0 is bitwise identical to the direct computation;
// queries starting mid-graph differ only by one floating-point subtraction.
//
// Storage comes in two modes behind the same query interface: tables built
// by the constructors (or CostTable::from_parts) own their prefix arrays in
// vectors, while CostTable::from_view reads them from externally owned
// memory — the zero-copy half of the binary interchange (src/io), where the
// arrays live page-aligned inside an mmap'd .plbin file. Queries go through
// spans either way, so the hot path is identical in both modes.
#pragma once

#include "hw/analytic.hpp"

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace powerlens::hw {

class CostTable {
 public:
  // cpu_slot entries carry this sentinel for CPU levels that were not
  // precomputed (see raw()).
  static constexpr std::size_t kNoSlot = std::numeric_limits<std::size_t>::max();

  // An empty table: nothing precomputed, every query throws. Exists so the
  // interchange loaders can stage into a member before filling it.
  CostTable() = default;

  // Precomputes all (gpu_level, cpu_level) pairs of `platform`.
  CostTable(const Platform& platform, std::span<const dnn::Layer> layers,
            double cpu_load = 0.2);
  // Precomputes only the given cpu levels (all gpu levels); use when the
  // caller sweeps the GPU ladder at one or two known CPU operating points.
  // Duplicate cpu levels are stored once. Throws std::out_of_range on a
  // level outside the platform ladder.
  CostTable(const Platform& platform, std::span<const dnn::Layer> layers,
            std::span<const std::size_t> cpu_levels, double cpu_load = 0.2);
  // Same, from pre-extracted per-layer features (CostFeatures::extract on
  // the same platform/layers): the layer-major fill skips the per-cell
  // model re-derivation entirely. The layer-span constructors are exactly
  // extract-then-this, so all paths produce identical bits. The adaptation
  // layer extracts once per model and refills per epoch through this.
  CostTable(const Platform& platform, const CostFeatures& features,
            std::span<const std::size_t> cpu_levels, double cpu_load = 0.2);

  // Copies re-anchor the query spans into the copied vectors when the
  // source owns its storage; view-mode copies share the external memory.
  CostTable(const CostTable& other);
  CostTable& operator=(const CostTable& other);
  // Moves never relocate the underlying doubles (vector moves transfer the
  // allocation), so the spans stay valid as-is.
  CostTable(CostTable&&) noexcept = default;
  CostTable& operator=(CostTable&&) noexcept = default;

  // --- Serialized-parts interface (the binary interchange, src/io) ---

  struct Raw {
    std::size_t num_layers = 0;
    std::size_t gpu_levels = 0;
    // cpu level -> dense slot index, kNoSlot when not precomputed.
    std::span<const std::size_t> cpu_slot;
    std::size_t cpu_slots = 0;
    std::span<const double> time_prefix;
    std::span<const double> energy_prefix;
  };
  Raw raw() const noexcept;

  // Owning rebuild from serialized parts (the heap-read load path).
  // Validates every structural invariant the constructors establish and
  // throws std::invalid_argument on a violation.
  static CostTable from_parts(std::size_t num_layers, std::size_t gpu_levels,
                              std::vector<std::size_t> cpu_slot,
                              std::size_t cpu_slots,
                              std::vector<double> time_prefix,
                              std::vector<double> energy_prefix);
  // Non-owning rebuild over externally owned prefix arrays (the mmap load
  // path). The caller must keep the backing memory alive and immutable for
  // the table's lifetime; cpu_slot is tiny and copied. Same validation.
  static CostTable from_view(std::size_t num_layers, std::size_t gpu_levels,
                             std::vector<std::size_t> cpu_slot,
                             std::size_t cpu_slots,
                             std::span<const double> time_prefix,
                             std::span<const double> energy_prefix);

  // Value equality over metadata and prefix contents, whatever the storage
  // mode — the interchange round-trip contract.
  bool operator==(const CostTable& other) const noexcept;

  std::size_t num_layers() const noexcept { return num_layers_; }
  std::size_t gpu_levels() const noexcept { return gpu_levels_; }
  bool has_cpu_level(std::size_t cpu_level) const noexcept;

  // Cost of layers [begin, end) at the given levels; O(1). Throws
  // std::out_of_range on a bad range, gpu level, or a cpu level that was not
  // precomputed.
  BlockCost block_cost(std::size_t begin, std::size_t end,
                       std::size_t gpu_level, std::size_t cpu_level) const;

  // Energy-argmin GPU level for layers [begin, end); ties resolve to the
  // lower level, matching hw::optimal_gpu_level exactly.
  std::size_t optimal_gpu_level(std::size_t begin, std::size_t end,
                                std::size_t cpu_level) const;
  // Capped argmin: considers only levels [0, max_gpu_level]. The online
  // adaptation layer searches under a thermal cap without rebuilding the
  // table. `max_gpu_level` clamps to the ladder top, so passing SIZE_MAX
  // reproduces the unconstrained search bit for bit.
  std::size_t optimal_gpu_level(std::size_t begin, std::size_t end,
                                std::size_t cpu_level,
                                std::size_t max_gpu_level) const;

  // An owning copy with every prefix entry multiplied by the per-dimension
  // factor — the adaptation layer's observed/predicted correction applied to
  // the whole plane at once. Scaling a prefix sum scales every block query
  // by the same factor (subtraction distributes), so the argmin structure
  // changes only where the energy factor changes it. Throws
  // std::invalid_argument on non-finite or non-positive factors.
  CostTable scaled(double time_factor, double energy_factor) const;

 private:
  void init(const Platform& platform, const CostFeatures& features,
            std::span<const std::size_t> cpu_levels, double cpu_load);
  static void validate_parts(std::size_t num_layers, std::size_t gpu_levels,
                             std::span<const std::size_t> cpu_slot,
                             std::size_t cpu_slots,
                             std::span<const double> time_prefix,
                             std::span<const double> energy_prefix);
  std::size_t plane(std::size_t gpu_level, std::size_t cpu_level) const;
  // Explicit storage-mode flag (not a pointer comparison): copy assignment
  // must rebind the query spans for owning tables and share them for
  // view-backed ones, and a pointer test cannot tell a moved-from owner
  // from a view over external memory.
  bool owns_storage() const noexcept { return !view_mode_; }

  std::size_t num_layers_ = 0;
  std::size_t gpu_levels_ = 0;
  // cpu level -> dense slot index, or kNoSlot when not precomputed.
  std::vector<std::size_t> cpu_slot_;
  std::size_t cpu_slots_ = 0;
  // True only for from_view tables: the prefix spans alias external
  // (mmap'd) memory and the vectors stay empty.
  bool view_mode_ = false;
  // Prefix sums, one (num_layers_ + 1)-length run per (gpu, cpu-slot) plane:
  // index [plane * (L + 1) + i] holds the cost of layers [0, i). Owned by
  // the vectors in owning mode (views point into them), external in view
  // mode (vectors stay empty).
  std::vector<double> time_prefix_;
  std::vector<double> energy_prefix_;
  std::span<const double> time_view_;
  std::span<const double> energy_view_;
};

}  // namespace powerlens::hw
