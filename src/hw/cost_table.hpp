// Memoized analytic costs for one graph: per-layer (time, energy) at every
// (gpu_level, cpu_level) pair, stored as prefix sums over the layer axis.
//
// The offline labelling sweeps (dataset generation, oracle planning) evaluate
// the same layer ranges at the same frequency levels thousands of times per
// network — enforce_min_block_duration re-times shrinking views per merge
// step, best_hyperparam_class sweeps a 24-point hyperparameter grid, and
// every block is swept across the whole GPU ladder. A CostTable pays the
// per-layer model evaluation exactly once per (layer, gpu, cpu) triple and
// then answers any contiguous block query in O(1) by prefix-sum subtraction.
//
// Accumulation order matches analytic_block_cost layer-by-layer, so a query
// starting at layer 0 is bitwise identical to the direct computation;
// queries starting mid-graph differ only by one floating-point subtraction.
#pragma once

#include "hw/analytic.hpp"

#include <span>
#include <vector>

namespace powerlens::hw {

class CostTable {
 public:
  // Precomputes all (gpu_level, cpu_level) pairs of `platform`.
  CostTable(const Platform& platform, std::span<const dnn::Layer> layers,
            double cpu_load = 0.2);
  // Precomputes only the given cpu levels (all gpu levels); use when the
  // caller sweeps the GPU ladder at one or two known CPU operating points.
  // Duplicate cpu levels are stored once. Throws std::out_of_range on a
  // level outside the platform ladder.
  CostTable(const Platform& platform, std::span<const dnn::Layer> layers,
            std::span<const std::size_t> cpu_levels, double cpu_load = 0.2);

  std::size_t num_layers() const noexcept { return num_layers_; }
  std::size_t gpu_levels() const noexcept { return gpu_levels_; }
  bool has_cpu_level(std::size_t cpu_level) const noexcept;

  // Cost of layers [begin, end) at the given levels; O(1). Throws
  // std::out_of_range on a bad range, gpu level, or a cpu level that was not
  // precomputed.
  BlockCost block_cost(std::size_t begin, std::size_t end,
                       std::size_t gpu_level, std::size_t cpu_level) const;

  // Energy-argmin GPU level for layers [begin, end); ties resolve to the
  // lower level, matching hw::optimal_gpu_level exactly.
  std::size_t optimal_gpu_level(std::size_t begin, std::size_t end,
                                std::size_t cpu_level) const;

 private:
  void init(const Platform& platform, std::span<const dnn::Layer> layers,
            std::span<const std::size_t> cpu_levels, double cpu_load);
  std::size_t plane(std::size_t gpu_level, std::size_t cpu_level) const;

  std::size_t num_layers_ = 0;
  std::size_t gpu_levels_ = 0;
  // cpu level -> dense slot index, or npos when not precomputed.
  std::vector<std::size_t> cpu_slot_;
  std::size_t cpu_slots_ = 0;
  // Prefix sums, one (num_layers_ + 1)-length run per (gpu, cpu-slot) plane:
  // index [plane * (L + 1) + i] holds the cost of layers [0, i).
  std::vector<double> time_prefix_;
  std::vector<double> energy_prefix_;
};

}  // namespace powerlens::hw
