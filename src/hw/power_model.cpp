#include "hw/power_model.hpp"

#include <algorithm>
#include <cmath>

namespace powerlens::hw {

PowerModel::PowerModel(const Platform& platform) : platform_(&platform) {}

double PowerModel::interp_voltage(double freq_hz, double f_min, double f_max,
                                  double v_min, double v_max,
                                  double exponent) noexcept {
  const double t =
      std::clamp((freq_hz - f_min) / (f_max - f_min), 0.0, 1.0);
  return v_min + (v_max - v_min) * std::pow(t, exponent);
}

double PowerModel::gpu_voltage(double freq_hz) const noexcept {
  const GpuSpec& g = platform_->gpu;
  return interp_voltage(freq_hz, g.freqs_hz.front(), g.freqs_hz.back(),
                        g.v_min, g.v_max, g.v_exponent);
}

double PowerModel::cpu_voltage(double freq_hz) const noexcept {
  const CpuSpec& c = platform_->cpu;
  return interp_voltage(freq_hz, c.freqs_hz.front(), c.freqs_hz.back(),
                        c.v_min, c.v_max, 1.0);
}

double PowerModel::gpu_dynamic_w(double freq_hz,
                                 double activity) const noexcept {
  const double v = gpu_voltage(freq_hz);
  return platform_->gpu.c_eff * v * v * freq_hz *
         std::clamp(activity, 0.0, 1.0);
}

double PowerModel::gpu_static_w(double freq_hz) const noexcept {
  return platform_->gpu.static_w_per_volt * gpu_voltage(freq_hz);
}

double PowerModel::cpu_power_w(double freq_hz, double load) const noexcept {
  const double v = cpu_voltage(freq_hz);
  return platform_->cpu.c_eff * v * v * freq_hz *
             std::clamp(load, 0.0, 1.0) +
         platform_->cpu.static_w_per_volt * v;
}

double PowerModel::mem_power_w(double bandwidth_fraction) const noexcept {
  return platform_->mem.active_power_w *
         std::clamp(bandwidth_fraction, 0.0, 1.0);
}

double PowerModel::total_w(double gpu_freq_hz, double cpu_freq_hz,
                           const ActivityState& activity) const noexcept {
  return gpu_dynamic_w(gpu_freq_hz, activity.gpu_compute) +
         gpu_static_w(gpu_freq_hz) +
         cpu_power_w(cpu_freq_hz, activity.cpu) + mem_power_w(activity.mem) +
         platform_->base_power_w;
}

}  // namespace powerlens::hw
