#include "hw/sim_engine.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace powerlens::hw {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
// Guard against zero-length slices looping forever on FP round-off.
constexpr double kMinSlice = 1e-12;

// Virtual-track layout of one simulator run in the trace. Each run claims a
// fresh pid, and each tid's timestamps are non-decreasing by construction
// (simulated time only moves forward within a run).
constexpr int kLayersTid = 0;    // per-layer / pass / gap B-E spans
constexpr int kDvfsTid = 1;      // transition instants + level counters
constexpr int kGovernorTid = 2;  // sampling-decision instants
constexpr int kPowerTid = 3;     // tegrastats-style power counter track

constexpr double kUsPerS = 1e6;

}  // namespace

struct SimEngine::State {
  double time = 0.0;
  double energy = 0.0;
  std::int64_t images = 0;
  std::size_t transitions = 0;
  double stall_time = 0.0;  // cumulative DVFS host-stall seconds

  // Trace sink for this run; null when tracing is disabled, so every
  // emission site is a single pointer test on the hot path.
  obs::TraceWriter* tw = nullptr;
  int trace_pid = 0;

  std::size_t gpu_level = 0;       // effective level
  std::size_t cpu_level = 0;
  std::size_t gpu_pending = 0;     // target of an in-flight change
  double gpu_pending_at = kInf;    // effect time (kInf = none)
  std::size_t cpu_pending = 0;
  double cpu_pending_at = kInf;

  // Governor accumulators over the current sampling window.
  double win_start = 0.0;
  double win_gpu_util = 0.0;   // integral of busy-fraction dt
  double win_gpu_compute = 0.0;  // integral of ALU-activity dt
  double win_mem_util = 0.0;
  double win_cpu_util = 0.0;
  double win_cpu_peak = 0.0;   // integral of launcher-thread load dt
  double win_energy = 0.0;
  std::int64_t win_images = 0;
  double next_sample_at = kInf;

  double cpu_load = 0.2;

  // Fault model for this run (null = fault-free) and its decision indices.
  FaultModel* faults = nullptr;
  std::size_t dvfs_request_index = 0;
  std::size_t layer_ordinal = 0;
  // Thermal cap currently in force and the earliest time it may change;
  // -inf forces a query at the first slice.
  std::size_t thermal_levels_off = 0;
  double thermal_until = -kInf;
  double throttled_s = 0.0;  // time with effective level below requested

  std::vector<FreqTracePoint> trace;
  Telemetry telemetry{0.05};
};

SimEngine::SimEngine(const Platform& platform)
    : platform_(&platform), latency_(platform), power_(platform) {
  platform.validate();
}

RunPolicy SimEngine::default_policy() const noexcept {
  RunPolicy p;
  p.initial_gpu_level = platform_->max_gpu_level();
  p.initial_cpu_level = platform_->max_cpu_level();
  return p;
}

std::size_t SimEngine::effective_gpu_level(const State& st) const noexcept {
  if (st.thermal_levels_off == 0) return st.gpu_level;
  const std::size_t max = platform_->max_gpu_level();
  const std::size_t cap =
      st.thermal_levels_off >= max ? 0 : max - st.thermal_levels_off;
  return st.gpu_level < cap ? st.gpu_level : cap;
}

void SimEngine::refresh_thermal(State& st) {
  if (st.faults == nullptr || st.time < st.thermal_until) return;
  const ThermalState ts = st.faults->thermal_at(st.time);
  if (st.tw != nullptr && ts.levels_off != st.thermal_levels_off) {
    st.tw->counter(st.trace_pid, kDvfsTid, st.time * kUsPerS,
                   "thermal_levels_off", static_cast<double>(ts.levels_off));
  }
  st.thermal_levels_off = ts.levels_off;
  st.thermal_until = ts.until_s;
}

void SimEngine::advance(State& st, double dt, const ActivityState& activity,
                        double gpu_busy) {
  if (dt <= 0.0) return;
  const std::size_t gpu_eff = effective_gpu_level(st);
  if (gpu_eff < st.gpu_level) st.throttled_s += dt;
  const double gpu_f = platform_->gpu_freq(gpu_eff);
  const double cpu_f = platform_->cpu_freq(st.cpu_level);
  const double p = power_.total_w(gpu_f, cpu_f, activity);
  st.energy += p * dt;
  st.telemetry.record_slice(st.time, dt, p);
  st.win_gpu_util += gpu_busy * dt;
  st.win_gpu_compute += activity.gpu_compute * dt;
  st.win_mem_util += activity.mem * dt;
  st.win_cpu_util += activity.cpu * dt;
  st.win_energy += p * dt;
  st.time += dt;
}

void SimEngine::request_gpu_level(State& st, std::size_t level) {
  if (level >= platform_->gpu_levels()) {
    throw std::out_of_range("SimEngine: gpu level out of range");
  }
  const std::size_t target =
      st.gpu_pending_at < kInf ? st.gpu_pending : st.gpu_level;
  if (level == target) return;

  ++st.transitions;
  if (st.tw != nullptr) {
    st.tw->instant_at(st.trace_pid, kDvfsTid, st.time * kUsPerS,
                      "dvfs_request", "dvfs",
                      {obs::TraceArg::num("from", static_cast<double>(target)),
                       obs::TraceArg::num("to", static_cast<double>(level))});
  }
  // The host blocks while the clock request goes through the driver; no
  // forward progress, near-idle GPU activity.
  advance(st, platform_->dvfs.stall_s, ActivityState{0.0, 0.0, st.cpu_load},
          /*gpu_busy=*/0.0);
  st.stall_time += platform_->dvfs.stall_s;
  if (st.tw != nullptr) {
    st.tw->counter(st.trace_pid, kDvfsTid, st.time * kUsPerS,
                   "dvfs_transitions", static_cast<double>(st.transitions));
    st.tw->counter(st.trace_pid, kDvfsTid, st.time * kUsPerS, "dvfs_stall_ms",
                   st.stall_time * 1e3);
  }
  if (st.faults != nullptr &&
      st.faults->dvfs_request_fails(st.dvfs_request_index++, st.time)) {
    // Actuation failed: the driver stall was paid, but the clock keeps its
    // old frequency and no pending change is scheduled. A later request for
    // the same level is not deduplicated (the target never moved), so
    // callers naturally retry.
    if (st.tw != nullptr) {
      st.tw->instant_at(st.trace_pid, kDvfsTid, st.time * kUsPerS,
                        "dvfs_fault", "dvfs",
                        {obs::TraceArg::num("to", static_cast<double>(level))});
    }
    return;
  }
  st.gpu_pending = level;
  st.gpu_pending_at = st.time + platform_->dvfs.latency_s;
}

void SimEngine::request_cpu_level(State& st, std::size_t level) {
  if (level >= platform_->cpu_levels()) {
    throw std::out_of_range("SimEngine: cpu level out of range");
  }
  const std::size_t target =
      st.cpu_pending_at < kInf ? st.cpu_pending : st.cpu_level;
  if (level == target) return;
  // CPU cpufreq switches are cheap relative to the GPU path; effect-only.
  st.cpu_pending = level;
  st.cpu_pending_at = st.time + 1e-3;
}

void SimEngine::apply_pending(State& st) {
  if (st.time >= st.gpu_pending_at) {
    st.gpu_level = st.gpu_pending;
    st.gpu_pending_at = kInf;
    st.trace.push_back({st.time, st.gpu_level});
    if (st.tw != nullptr) {
      st.tw->counter(st.trace_pid, kDvfsTid, st.time * kUsPerS, "gpu_level",
                     static_cast<double>(st.gpu_level));
    }
  }
  if (st.time >= st.cpu_pending_at) {
    st.cpu_level = st.cpu_pending;
    st.cpu_pending_at = kInf;
    if (st.tw != nullptr) {
      st.tw->counter(st.trace_pid, kDvfsTid, st.time * kUsPerS, "cpu_level",
                     static_cast<double>(st.cpu_level));
    }
  }
}

void SimEngine::governor_sample(State& st, const RunPolicy& policy) {
  const double window = st.time - st.win_start;
  GovernorSample s;
  s.time_s = st.time;
  s.window_s = window;
  if (window > 0.0) {
    s.gpu_util = st.win_gpu_util / window;
    s.gpu_compute_util = st.win_gpu_compute / window;
    s.mem_util = st.win_mem_util / window;
    // Governors see the busiest core, cpufreq-style.
    s.cpu_util = st.win_cpu_peak / window;
    s.power_w = st.win_energy / window;
    s.throughput = static_cast<double>(st.win_images) / window;
  }
  s.gpu_level = st.gpu_level;
  s.cpu_level = st.cpu_level;

  const GovernorDecision d = policy.governor->on_sample(s);
  if (st.tw != nullptr) {
    st.tw->instant_at(
        st.trace_pid, kGovernorTid, st.time * kUsPerS, "governor_sample",
        "governor",
        {obs::TraceArg::num("gpu_util", s.gpu_util),
         obs::TraceArg::num("cpu_util", s.cpu_util),
         obs::TraceArg::num("power_w", s.power_w),
         obs::TraceArg::num("gpu_decision",
                            d.gpu_level ? static_cast<double>(*d.gpu_level)
                                        : -1.0),
         obs::TraceArg::num("cpu_decision",
                            d.cpu_level ? static_cast<double>(*d.cpu_level)
                                        : -1.0)});
  }
  // Preset schedules own the GPU ladder; a concurrent reactive governor may
  // still drive the CPU (the paper's deployments keep CPU ondemand).
  if (d.gpu_level && policy.schedule == nullptr) {
    request_gpu_level(st, *d.gpu_level);
  }
  if (d.cpu_level) request_cpu_level(st, *d.cpu_level);

  st.win_start = st.time;
  st.win_gpu_util = 0.0;
  st.win_gpu_compute = 0.0;
  st.win_mem_util = 0.0;
  st.win_cpu_util = 0.0;
  st.win_cpu_peak = 0.0;
  st.win_energy = 0.0;
  st.win_images = 0;
  st.next_sample_at = st.time + policy.governor->sample_period_s();
}

void SimEngine::execute_graph(const dnn::Graph& graph, int passes,
                              const RunPolicy& policy, State& st) {
  if (passes <= 0) throw std::invalid_argument("SimEngine: passes <= 0");

  for (int pass = 0; pass < passes; ++pass) {
    if (st.tw != nullptr) {
      st.tw->begin_at(st.trace_pid, kLayersTid, st.time * kUsPerS, "pass",
                      "sim",
                      {obs::TraceArg::num("pass", static_cast<double>(pass)),
                       obs::TraceArg::str("graph", graph.name())});
    }
    for (std::size_t i = 0; i < graph.size(); ++i) {
      if (policy.schedule != nullptr) {
        if (const auto level = policy.schedule->level_at(i)) {
          request_gpu_level(st, *level);
        }
        if (const auto cpu = policy.schedule->cpu_level_at(i)) {
          request_cpu_level(st, *cpu);
        }
      }
      const dnn::Layer& layer = graph.layer(i);
      if (layer.type == dnn::OpType::kInput) continue;

      if (st.tw != nullptr) {
        st.tw->begin_at(
            st.trace_pid, kLayersTid, st.time * kUsPerS,
            dnn::op_name(layer.type), "layer",
            {obs::TraceArg::num("layer", static_cast<double>(i)),
             obs::TraceArg::num("gpu_level",
                                static_cast<double>(st.gpu_level))});
      }
      // One latency-inflation draw per executed layer; the factor applies
      // to the whole layer however many slices it ends up cut into.
      double lat_factor = 1.0;
      if (st.faults != nullptr) {
        lat_factor = st.faults->layer_latency_factor(st.layer_ordinal++);
      }
      double remaining = 1.0;  // fraction of the layer still to execute
      while (remaining > kMinSlice) {
        apply_pending(st);
        refresh_thermal(st);
        const LayerTiming t = latency_.time_layer(
            layer, platform_->gpu_freq(effective_gpu_level(st)),
            platform_->cpu_freq(st.cpu_level));
        if (t.total_s <= 0.0) break;
        const double total_s = t.total_s * lat_factor;

        const double layer_dt = remaining * total_s;
        double dt = layer_dt;
        dt = std::min(dt, st.gpu_pending_at - st.time);
        dt = std::min(dt, st.cpu_pending_at - st.time);
        dt = std::min(dt, st.next_sample_at - st.time);
        if (st.faults != nullptr) {
          dt = std::min(dt, st.thermal_until - st.time);
        }
        dt = std::max(dt, kMinSlice);

        // Launcher-thread load is work-conserving: fixed cycles per second
        // of inference, so its busy fraction rises as the CPU slows. The
        // average load (for power) spreads it over the cores.
        const double launcher = std::min(
            1.0, policy.launcher_load * platform_->cpu.freqs_hz.back() /
                     platform_->cpu_freq(st.cpu_level));
        const double cpu_act = std::min(
            1.0, policy.cpu_load +
                     launcher / static_cast<double>(platform_->cpu.cores));
        st.win_cpu_peak += launcher * dt;
        advance(st, dt, ActivityState{t.gpu_activity, t.mem_activity, cpu_act},
                t.gpu_busy);
        remaining -= dt / total_s;

        apply_pending(st);
        if (policy.governor != nullptr && st.time >= st.next_sample_at) {
          governor_sample(st, policy);
        }
      }
      if (st.tw != nullptr) {
        st.tw->end_at(st.trace_pid, kLayersTid, st.time * kUsPerS,
                      dnn::op_name(layer.type), "layer");
      }
    }
    st.images += graph.batch_size();
    st.win_images += graph.batch_size();

    // Host-side inter-pass gap: GPU idle, launcher busy preparing the next
    // batch. Sliced against governor sampling so the utilization dip is
    // observable.
    if (st.tw != nullptr && policy.inter_pass_gap_s > kMinSlice) {
      st.tw->begin_at(st.trace_pid, kLayersTid, st.time * kUsPerS,
                      "inter_pass_gap", "sim");
    }
    double gap = policy.inter_pass_gap_s;
    while (gap > kMinSlice) {
      apply_pending(st);
      refresh_thermal(st);
      double dt = gap;
      dt = std::min(dt, st.gpu_pending_at - st.time);
      dt = std::min(dt, st.cpu_pending_at - st.time);
      dt = std::min(dt, st.next_sample_at - st.time);
      if (st.faults != nullptr) {
        dt = std::min(dt, st.thermal_until - st.time);
      }
      dt = std::max(dt, kMinSlice);
      const double cpu_act = std::min(
          1.0, policy.cpu_load +
                   policy.launcher_load /
                       static_cast<double>(platform_->cpu.cores));
      st.win_cpu_peak += policy.launcher_load * dt;
      advance(st, dt, ActivityState{0.0, 0.0, cpu_act}, /*gpu_busy=*/0.0);
      gap -= dt;
      apply_pending(st);
      if (policy.governor != nullptr && st.time >= st.next_sample_at) {
        governor_sample(st, policy);
      }
    }
    if (st.tw != nullptr && policy.inter_pass_gap_s > kMinSlice) {
      st.tw->end_at(st.trace_pid, kLayersTid, st.time * kUsPerS,
                    "inter_pass_gap", "sim");
    }
    if (st.tw != nullptr) {
      st.tw->end_at(st.trace_pid, kLayersTid, st.time * kUsPerS, "pass",
                    "sim");
    }
  }
}

ExecutionResult SimEngine::run(const dnn::Graph& graph, int passes,
                               const RunPolicy& policy) {
  const WorkItem item{&graph, passes};
  return run_workload(std::span<const WorkItem>{&item, 1}, policy);
}

ExecutionResult SimEngine::run_workload(std::span<const WorkItem> items,
                                        const RunPolicy& policy) {
  State st;
  st.cpu_load = policy.cpu_load;
  st.gpu_level = policy.initial_gpu_level;
  st.cpu_level = policy.initial_cpu_level;
  st.telemetry = Telemetry(platform_->telemetry_period_s);
  st.faults = policy.faults;
  if (policy.faults != nullptr) {
    st.telemetry.set_fault_model(policy.faults);
  }
  // Snapshot so the result reports this run's delta even if the caller
  // (incorrectly) reuses a fault model across runs.
  const FaultCounters faults_before =
      policy.faults != nullptr ? policy.faults->counters() : FaultCounters{};
  st.trace.push_back({0.0, st.gpu_level});

  obs::TraceWriter& tw =
      policy.trace != nullptr ? *policy.trace : obs::default_trace();
  if (tw.enabled()) {
    st.tw = &tw;
    st.trace_pid = tw.next_virtual_pid();
    std::string label = "sim " + platform_->name;
    if (policy.trace_label != nullptr) {
      label += " (";
      label += policy.trace_label;
      label += ")";
    }
    tw.name_process(st.trace_pid, label);
    tw.name_thread(st.trace_pid, kLayersTid, "layers");
    tw.name_thread(st.trace_pid, kDvfsTid, "dvfs");
    tw.name_thread(st.trace_pid, kGovernorTid, "governor");
    tw.name_thread(st.trace_pid, kPowerTid, "power");
    tw.counter(st.trace_pid, kDvfsTid, 0.0, "gpu_level",
               static_cast<double>(st.gpu_level));
    tw.counter(st.trace_pid, kDvfsTid, 0.0, "cpu_level",
               static_cast<double>(st.cpu_level));
  }

  if (policy.governor != nullptr) {
    policy.governor->reset(*platform_);
    st.next_sample_at = policy.governor->sample_period_s();
  }

  std::vector<WorkItemMark> item_marks;
  item_marks.reserve(items.size());
  for (const WorkItem& item : items) {
    if (item.graph == nullptr) {
      throw std::invalid_argument("SimEngine: null graph in workload");
    }
    execute_graph(*item.graph, item.passes, policy, st);
    item_marks.push_back({st.time, st.energy, st.images, st.transitions});
  }
  st.telemetry.finish(st.time);

  // The power-rail counter track mirrors the tegrastats trace: one counter
  // point per telemetry sample, on its own tid so timestamps stay monotone.
  if (st.tw != nullptr) {
    for (const PowerSample& s : st.telemetry.samples()) {
      st.tw->counter(st.trace_pid, kPowerTid, s.time_s * kUsPerS, "power_w",
                     s.power_w);
    }
  }

  ExecutionResult r;
  r.time_s = st.time;
  r.energy_j = st.energy;
  r.images = st.images;
  r.dvfs_transitions = st.transitions;
  r.dvfs_stall_s = st.stall_time;
  r.telemetry_energy_j = st.telemetry.total_energy_j();
  r.telemetry_mean_power_w = st.telemetry.mean_power_w();
  r.telemetry_peak_power_w = st.telemetry.peak_power_w();
  r.thermal_throttled_s = st.throttled_s;
  if (policy.faults != nullptr) {
    const FaultCounters& after = policy.faults->counters();
    r.faults.dvfs_failed = after.dvfs_failed - faults_before.dvfs_failed;
    r.faults.thermal_events =
        after.thermal_events - faults_before.thermal_events;
    r.faults.telemetry_dropped =
        after.telemetry_dropped - faults_before.telemetry_dropped;
    r.faults.latency_inflated =
        after.latency_inflated - faults_before.latency_inflated;
  }
  r.gpu_trace = std::move(st.trace);
  r.power_samples.assign(st.telemetry.samples().begin(),
                         st.telemetry.samples().end());
  r.item_marks = std::move(item_marks);

  // Aggregate run accounting in the global registry — one registry lookup
  // per run, nothing on the simulation hot path.
  obs::MetricsRegistry& metrics = obs::global_metrics();
  metrics.counter("powerlens_sim_runs_total", "simulator runs").inc();
  metrics
      .counter("powerlens_sim_images_total", "images inferred in simulation")
      .inc(static_cast<double>(r.images));
  metrics
      .counter("powerlens_sim_energy_joules_total",
               "simulated energy consumed")
      .inc(r.energy_j);
  metrics
      .counter("powerlens_sim_time_seconds_total", "simulated time elapsed")
      .inc(r.time_s);
  metrics
      .counter("powerlens_sim_dvfs_transitions_total",
               "GPU DVFS transitions applied")
      .inc(static_cast<double>(r.dvfs_transitions));
  metrics
      .counter("powerlens_sim_dvfs_stall_seconds_total",
               "host stall paid on DVFS transitions")
      .inc(r.dvfs_stall_s);
  if (policy.faults != nullptr) {
    metrics
        .counter("powerlens_fault_dvfs_failed_total",
                 "GPU DVFS transition requests that failed to actuate")
        .inc(static_cast<double>(r.faults.dvfs_failed));
    metrics
        .counter("powerlens_fault_thermal_events_total",
                 "thermal throttle windows entered")
        .inc(static_cast<double>(r.faults.thermal_events));
    metrics
        .counter("powerlens_fault_telemetry_dropped_total",
                 "telemetry samples dropped from the stream")
        .inc(static_cast<double>(r.faults.telemetry_dropped));
    metrics
        .counter("powerlens_fault_latency_inflated_total",
                 "layers hit by transient latency inflation")
        .inc(static_cast<double>(r.faults.latency_inflated));
    metrics
        .counter("powerlens_fault_thermal_throttled_seconds_total",
                 "simulated time spent thermally capped")
        .inc(r.thermal_throttled_s);
  }
  return r;
}

}  // namespace powerlens::hw
