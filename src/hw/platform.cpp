#include "hw/platform.hpp"

namespace powerlens::hw {

namespace {

constexpr double kMHz = 1e6;

}  // namespace

void Platform::validate() const {
  auto check_ladder = [](const std::vector<double>& f, const char* what) {
    if (f.size() < 2) {
      throw std::invalid_argument(std::string("Platform: ") + what +
                                  " ladder needs at least two levels");
    }
    for (std::size_t i = 0; i < f.size(); ++i) {
      if (f[i] <= 0.0 || (i > 0 && f[i] <= f[i - 1])) {
        throw std::invalid_argument(std::string("Platform: ") + what +
                                    " ladder must be positive ascending");
      }
    }
  };
  check_ladder(gpu.freqs_hz, "gpu");
  check_ladder(cpu.freqs_hz, "cpu");
  if (gpu.v_min <= 0.0 || gpu.v_max < gpu.v_min || gpu.v_exponent <= 0.0) {
    throw std::invalid_argument("Platform: bad gpu voltage curve");
  }
  if (gpu.cuda_cores <= 0 || gpu.c_eff <= 0.0) {
    throw std::invalid_argument("Platform: bad gpu compute/power spec");
  }
  if (mem.bandwidth_bytes_per_s <= 0.0 || mem.efficiency <= 0.0 ||
      mem.efficiency > 1.0 || mem.traffic_amplification < 1.0) {
    throw std::invalid_argument("Platform: bad memory spec");
  }
  if (base_power_w < 0.0 || dvfs.latency_s < 0.0 || dvfs.stall_s < 0.0 ||
      telemetry_period_s <= 0.0) {
    throw std::invalid_argument("Platform: bad power/timing constants");
  }
}

Platform make_tx2() {
  Platform p;
  p.name = "tx2";
  // 13 GPU levels, 114-1300 MHz (Jetson TX2 gp10b frequency table).
  p.gpu.freqs_hz = {114.75 * kMHz, 216.75 * kMHz, 318.75 * kMHz,
                    420.75 * kMHz, 522.75 * kMHz, 624.75 * kMHz,
                    726.75 * kMHz, 854.25 * kMHz, 930.75 * kMHz,
                    1032.75 * kMHz, 1122.0 * kMHz, 1236.75 * kMHz,
                    1300.5 * kMHz};
  p.gpu.v_min = 0.55;
  p.gpu.v_max = 1.10;
  p.gpu.v_exponent = 1.3;
  p.gpu.cuda_cores = 256;  // 2 Pascal SMs
  p.gpu.flops_per_core_per_cycle = 2.0;
  p.gpu.c_eff = 7.6e-9;            // ~12 W dynamic at f_max, V_max
  p.gpu.static_w_per_volt = 0.7;
  p.gpu.stall_activity = 0.50;

  // Quad-core Cortex-A57 cluster (Denver cluster offline in MAXN defaults).
  p.cpu.cores = 4;
  p.cpu.freqs_hz = {345.6 * kMHz, 499.2 * kMHz, 652.8 * kMHz, 806.4 * kMHz,
                    960.0 * kMHz, 1113.6 * kMHz, 1267.2 * kMHz,
                    1420.8 * kMHz, 1574.4 * kMHz, 1728.0 * kMHz,
                    1881.6 * kMHz, 2035.2 * kMHz};
  p.cpu.v_min = 0.60;
  p.cpu.v_max = 1.05;
  p.cpu.c_eff = 1.2e-9;  // ~2.7 W dynamic at f_max
  p.cpu.static_w_per_volt = 0.3;
  p.cpu.launch_overhead_s = 25e-6;

  p.mem.bandwidth_bytes_per_s = 58.3e9;  // 128-bit LPDDR4
  p.mem.efficiency = 0.70;
  // PyTorch-era conv kernels lower to im2col + GEMM: a 3x3 convolution
  // re-reads its input ~K^2 times, so DRAM traffic runs several times the
  // tensor footprint. This is what makes Jetson inference memory-bound at
  // the top of the ladder (fps flattens past ~60% f_max in measurements).
  p.mem.traffic_amplification = 6.5;
  p.mem.active_power_w = 1.6;

  p.base_power_w = 1.6;
  p.dvfs = {0.048, 0.002};
  p.telemetry_period_s = 0.05;
  p.validate();
  return p;
}

Platform make_agx() {
  Platform p;
  p.name = "agx";
  // 14 GPU levels, 114-1377 MHz (Jetson AGX Xavier gv11b frequency table).
  p.gpu.freqs_hz = {114.75 * kMHz, 216.75 * kMHz, 318.75 * kMHz,
                    420.75 * kMHz, 522.75 * kMHz, 624.75 * kMHz,
                    675.75 * kMHz, 828.75 * kMHz, 905.25 * kMHz,
                    1032.75 * kMHz, 1198.5 * kMHz, 1236.75 * kMHz,
                    1338.75 * kMHz, 1377.0 * kMHz};
  p.gpu.v_min = 0.50;
  p.gpu.v_max = 1.15;
  // Steeper top end than TX2: Xavier's Volta V/f curve rises sharply past
  // ~1 GHz, which is what makes MAXN's pinned-max behaviour so wasteful.
  p.gpu.v_exponent = 1.35;
  p.gpu.cuda_cores = 512;  // 8 Volta SMs
  p.gpu.flops_per_core_per_cycle = 2.0;
  p.gpu.c_eff = 1.65e-8;           // ~30 W dynamic at f_max, V_max
  p.gpu.static_w_per_volt = 1.0;
  p.gpu.stall_activity = 0.50;

  // 8 Carmel cores.
  p.cpu.cores = 8;
  p.cpu.freqs_hz = {729.6 * kMHz, 960.0 * kMHz, 1190.4 * kMHz, 1420.8 * kMHz,
                    1651.2 * kMHz, 1881.6 * kMHz, 2112.0 * kMHz,
                    2265.6 * kMHz};
  p.cpu.v_min = 0.60;
  p.cpu.v_max = 1.05;
  p.cpu.c_eff = 1.4e-9;  // ~3.5 W dynamic at f_max
  p.cpu.static_w_per_volt = 0.3;
  p.cpu.launch_overhead_s = 12e-6;

  p.mem.bandwidth_bytes_per_s = 137.0e9;  // 256-bit LPDDR4x
  p.mem.efficiency = 0.75;
  // See TX2 note: im2col traffic amplification; Xavier's larger caches help
  // a little less than its bandwidth advantage suggests.
  p.mem.traffic_amplification = 8.0;
  p.mem.active_power_w = 2.6;

  p.base_power_w = 2.2;
  p.dvfs = {0.048, 0.002};
  p.telemetry_period_s = 0.05;
  p.validate();
  return p;
}

}  // namespace powerlens::hw
