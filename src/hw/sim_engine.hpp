// Time-stepped execution engine for DNN inference on the simulated platform.
//
// The engine walks a Graph layer by layer, advancing a simulation clock in
// slices bounded by: the end of the current layer, the next reactive-governor
// sampling instant, and pending DVFS level changes taking effect. Within a
// slice the frequency pair is constant, so power integrates exactly. This is
// what lets reactive governors exhibit their real pathologies — response lag
// (a block transition is only noticed at the next sample) and ping-pong
// (oscillating between levels around a utilization threshold) — while
// PowerLens's preset schedule switches exactly at block boundaries.
#pragma once

#include "dnn/graph.hpp"
#include "hw/fault_hooks.hpp"
#include "hw/governor.hpp"
#include "hw/latency_model.hpp"
#include "hw/platform.hpp"
#include "hw/power_model.hpp"
#include "hw/telemetry.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace powerlens::obs {
class TraceWriter;
}  // namespace powerlens::obs

namespace powerlens::hw {

struct WorkItem {
  const dnn::Graph* graph = nullptr;
  int passes = 1;  // forward passes; images = passes * batch
};

struct RunPolicy {
  // Reactive control; may be null. Decides GPU and/or CPU levels.
  Governor* governor = nullptr;
  // Preset GPU schedule (PowerLens / ablations); overrides any GPU decision
  // from `governor`. May be null.
  const PresetSchedule* schedule = nullptr;
  // Starting levels. Defaults (set by SimEngine::default_policy) are the
  // maximum levels, matching MAXN boot state.
  std::size_t initial_gpu_level = 0;
  std::size_t initial_cpu_level = 0;
  // Mean host load fraction across all cores while inference runs (feeds
  // CPU power).
  double cpu_load = 0.2;
  // Host-side gap between forward passes (next-batch preparation, result
  // copy). The GPU idles here — precisely the utilization dip that makes
  // reactive governors oscillate (Figure 1(A)): ondemand scales down in the
  // gap, then lags through the start of the next pass.
  double inter_pass_gap_s = 0.010;
  // Busy fraction of the kernel-launching thread at maximum CPU frequency.
  // The launcher's work is fixed cycles, so its busy fraction scales as
  // f_max/f — and it is the *per-core peak* load that cpufreq governors see,
  // which is why ondemand keeps the CPU clock high during inference.
  double launcher_load = 0.6;
  // Trace sink for this run; null means the process-wide obs::default_trace()
  // (a no-op unless someone enabled it). Emission reads the simulated clock
  // but never advances it, so results are identical with tracing on or off.
  obs::TraceWriter* trace = nullptr;
  // Label for this run's process track in the trace viewer (e.g. the
  // governor/method name). Must outlive the run.
  const char* trace_label = nullptr;
  // Hardware fault model for this run; null means fault-free. One instance
  // per run (its sticky/thermal state tracks this run's clock); the engine
  // reports the per-run fault delta in ExecutionResult::faults.
  FaultModel* faults = nullptr;
};

struct FreqTracePoint {
  double time_s = 0.0;
  std::size_t gpu_level = 0;
};

// Cumulative run totals at the instant a work item completes. Consecutive
// marks difference into exact per-item accounting, which is how the serving
// layer attributes latency/energy to individual requests of a continuous
// reactive-governor run without perturbing it.
struct WorkItemMark {
  double end_time_s = 0.0;
  double end_energy_j = 0.0;
  std::int64_t end_images = 0;
  std::size_t end_transitions = 0;
};

struct ExecutionResult {
  double time_s = 0.0;
  double energy_j = 0.0;
  std::int64_t images = 0;
  std::size_t dvfs_transitions = 0;
  // Cumulative host-stall time paid on GPU DVFS transitions (Table 3
  // overhead accounting): dvfs_transitions * Platform::dvfs.stall_s, already
  // included in time_s.
  double dvfs_stall_s = 0.0;
  // Telemetry's exact power integral, including slivers the sampling
  // windows drop; equals energy_j bit for bit (conservation invariant).
  double telemetry_energy_j = 0.0;
  // Telemetry-rail view of the run: sample mean and maximum (0 when every
  // sample was dropped). The serving layer's journal/residual accounting
  // reads these instead of re-deriving them from power_samples.
  double telemetry_mean_power_w = 0.0;
  double telemetry_peak_power_w = 0.0;
  // Faults injected during this run (zero when RunPolicy::faults is null).
  FaultCounters faults;
  // Time spent with the GPU ladder thermally capped below the requested
  // level, already included in time_s.
  double thermal_throttled_s = 0.0;
  std::vector<FreqTracePoint> gpu_trace;  // level changes (incl. initial)
  std::vector<PowerSample> power_samples; // tegrastats-style trace
  std::vector<WorkItemMark> item_marks;   // one per work item, in order

  double avg_power_w() const noexcept {
    return time_s > 0.0 ? energy_j / time_s : 0.0;
  }
  double fps() const noexcept {
    return time_s > 0.0 ? static_cast<double>(images) / time_s : 0.0;
  }
  // The paper's metric (eq. 1): images per joule.
  double energy_efficiency() const noexcept {
    return energy_j > 0.0 ? static_cast<double>(images) / energy_j : 0.0;
  }
};

class SimEngine {
 public:
  explicit SimEngine(const Platform& platform);

  // A policy starting from MAXN state (both ladders at maximum).
  RunPolicy default_policy() const noexcept;

  // Runs `passes` forward passes of one graph.
  ExecutionResult run(const dnn::Graph& graph, int passes,
                      const RunPolicy& policy);

  // Runs a task flow of multiple items back to back (Figure 5 workload).
  ExecutionResult run_workload(std::span<const WorkItem> items,
                               const RunPolicy& policy);

  const Platform& platform() const noexcept { return *platform_; }

 private:
  struct State;
  void execute_graph(const dnn::Graph& graph, int passes,
                     const RunPolicy& policy, State& st);
  void advance(State& st, double dt, const ActivityState& activity,
               double gpu_busy);
  // Requested level clamped by the thermal cap currently in force.
  std::size_t effective_gpu_level(const State& st) const noexcept;
  // Re-queries the fault model once the cached thermal window expires.
  void refresh_thermal(State& st);
  void request_gpu_level(State& st, std::size_t level);
  void request_cpu_level(State& st, std::size_t level);
  void apply_pending(State& st);
  void governor_sample(State& st, const RunPolicy& policy);

  const Platform* platform_;  // non-owning
  LatencyModel latency_;
  PowerModel power_;
};

}  // namespace powerlens::hw
