// DVFS driver facade: the deployment seam between PowerLens and a platform.
//
// On the paper's hardware the preset instrumentation points execute as
// writes to the Jetson devfreq sysfs nodes (the same path jetson_clocks
// scripts use); in this repository the runtime drives the simulation engine
// instead. Both sit behind this interface, so the instrumentation code is
// identical whether it runs on a board or in the simulator:
//
//   - SimDvfsDriver     — adapter used by examples/tests; applies levels to a
//                         RunPolicy-owned schedule state.
//   - SysfsDvfsDriver   — writes the frequency to a devfreq node
//                         (/sys/class/devfreq/<dev>/{min,max}_freq). Compiles
//                         everywhere; fails cleanly at runtime off-device.
#pragma once

#include "hw/platform.hpp"

#include <cstddef>
#include <string>
#include <string_view>

namespace powerlens::hw {

class DvfsDriver {
 public:
  virtual ~DvfsDriver() = default;

  // Requests a GPU frequency-ladder level. Returns false if the request
  // could not be issued (e.g. sysfs node missing); throws std::out_of_range
  // for an invalid level.
  virtual bool set_gpu_level(std::size_t level) = 0;
  // Last successfully requested level.
  virtual std::size_t gpu_level() const noexcept = 0;
  virtual std::string_view name() const noexcept = 0;
};

// In-memory driver for the simulated platforms; also serves as the test
// double for instrumentation code.
class SimDvfsDriver final : public DvfsDriver {
 public:
  explicit SimDvfsDriver(const Platform& platform);

  bool set_gpu_level(std::size_t level) override;
  std::size_t gpu_level() const noexcept override { return level_; }
  std::string_view name() const noexcept override { return "sim"; }

  // Number of successful set calls — mirrors the transition counters the
  // engine keeps.
  std::size_t transitions() const noexcept { return transitions_; }

 private:
  const Platform* platform_;  // non-owning
  std::size_t level_;
  std::size_t transitions_ = 0;
};

// Jetson devfreq driver: pins the GPU clock by writing the ladder frequency
// into min_freq and max_freq of a devfreq device (the mechanism behind
// jetson_clocks). Requires root on a real board; off-device every set call
// returns false.
class SysfsDvfsDriver final : public DvfsDriver {
 public:
  // `devfreq_path` e.g. "/sys/class/devfreq/17000000.gv11b".
  SysfsDvfsDriver(const Platform& platform, std::string devfreq_path);

  bool set_gpu_level(std::size_t level) override;
  std::size_t gpu_level() const noexcept override { return level_; }
  std::string_view name() const noexcept override { return "sysfs"; }

  const std::string& devfreq_path() const noexcept { return path_; }
  // True if the devfreq node exists and is writable (i.e. running on a
  // board with sufficient privileges).
  bool available() const;

 private:
  const Platform* platform_;  // non-owning
  std::string path_;
  std::size_t level_;
};

}  // namespace powerlens::hw
