// Simulated embedded-GPU platforms.
//
// The paper deploys on NVIDIA Jetson TX2 and Jetson AGX Xavier in MAXN mode.
// This module reproduces those platforms as calibrated analytic models: the
// exact GPU frequency ladders the paper states (TX2: 13 levels, 114-1300 MHz;
// AGX: 14 levels, 114-1370 MHz), a voltage/frequency curve, peak arithmetic
// throughput and DRAM bandwidth from the devices' datasheets, and the DVFS
// transition cost the paper measures (~50 ms, section 3.3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace powerlens::hw {

// GPU compute/power description.
struct GpuSpec {
  // Frequency ladder in Hz, ascending. Levels are indexed 0..n-1.
  std::vector<double> freqs_hz;
  double v_min = 0.65;        // volts at freqs_hz.front()
  double v_max = 1.10;        // volts at freqs_hz.back()
  double v_exponent = 1.0;    // V(f) curvature; >1 = steeper near f_max
  int cuda_cores = 256;
  double flops_per_core_per_cycle = 2.0;  // FMA counts as two FLOPs
  double c_eff = 0.0;         // effective switched capacitance (W / (V^2 Hz))
  double static_w_per_volt = 0.0;  // leakage, linear in V
  // Dynamic-activity floor while a kernel is memory-stalled: schedulers,
  // caches, and the memory subsystem keep toggling even when the ALUs wait
  // on DRAM. This is what makes downclocking memory-bound blocks pay — the
  // clock (and V^2) drop while the DRAM-bound runtime stays flat.
  double stall_activity = 0.35;
};

// CPU description (exercised by the FPG-C+G baseline and host overhead).
struct CpuSpec {
  std::vector<double> freqs_hz;
  int cores = 4;
  double v_min = 0.60;
  double v_max = 1.05;
  double c_eff = 0.0;
  double static_w_per_volt = 0.0;
  // Host-side per-kernel-launch overhead at f_max, seconds; scales as 1/f.
  double launch_overhead_s = 15e-6;
};

struct MemSpec {
  double bandwidth_bytes_per_s = 0.0;
  double efficiency = 0.75;       // achievable fraction of peak bandwidth
  // Actual DRAM traffic / theoretical tensor footprint. Real kernels re-read
  // inputs (im2col, halo regions), write-allocate, and miss caches, so the
  // footprint understates traffic severely; this multiplies layer bytes.
  double traffic_amplification = 1.0;
  double active_power_w = 0.0;    // DRAM power at full-bandwidth streaming
};

struct DvfsCost {
  // Delay between issuing a frequency change and it taking effect; execution
  // continues at the old frequency meanwhile (sysfs path + clock relock).
  double latency_s = 0.048;
  // Hard stall while the host blocks in the driver write; no forward
  // progress. latency + stall reproduces the ~50 ms per-switch overhead the
  // paper measures (section 3.3).
  double stall_s = 0.002;
};

struct Platform {
  std::string name;
  GpuSpec gpu;
  CpuSpec cpu;
  MemSpec mem;
  double base_power_w = 0.0;  // board: regulators, carrier, idle peripherals
  DvfsCost dvfs;
  double telemetry_period_s = 0.05;  // tegrastats-equivalent sampling

  std::size_t gpu_levels() const noexcept { return gpu.freqs_hz.size(); }
  std::size_t cpu_levels() const noexcept { return cpu.freqs_hz.size(); }
  std::size_t max_gpu_level() const noexcept { return gpu_levels() - 1; }
  std::size_t max_cpu_level() const noexcept { return cpu_levels() - 1; }

  double gpu_freq(std::size_t level) const {
    if (level >= gpu.freqs_hz.size()) {
      throw std::out_of_range("Platform: gpu level out of range");
    }
    return gpu.freqs_hz[level];
  }
  double cpu_freq(std::size_t level) const {
    if (level >= cpu.freqs_hz.size()) {
      throw std::out_of_range("Platform: cpu level out of range");
    }
    return cpu.freqs_hz[level];
  }

  // Throws std::invalid_argument on an inconsistent specification.
  void validate() const;
};

// The two platforms of the paper's evaluation.
Platform make_tx2();
Platform make_agx();

}  // namespace powerlens::hw
