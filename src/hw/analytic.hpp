// Closed-form (lag-free) energy/time evaluation of layer ranges at fixed
// frequency levels.
//
// The dataset generator (paper section 2.2) deploys "each block in the power
// view at all frequencies to select the optimal energy efficiency"; doing
// that with the full event simulation for 8000 networks x every block x every
// level would be needlessly slow, and no governor dynamics are involved at a
// fixed frequency. These helpers compute the same steady-state quantities
// directly from the latency and power models.
#pragma once

#include "dnn/graph.hpp"
#include "hw/governor.hpp"
#include "hw/latency_model.hpp"
#include "hw/power_model.hpp"

#include <cstddef>
#include <span>
#include <vector>

namespace powerlens::hw {

struct BlockCost {
  double time_s = 0.0;
  double energy_j = 0.0;

  double avg_power_w() const noexcept {
    return time_s > 0.0 ? energy_j / time_s : 0.0;
  }
};

// Cost of executing `layers` once at fixed GPU/CPU levels. kInput layers
// contribute nothing. `cpu_load` is the host-load fraction during inference.
BlockCost analytic_block_cost(const Platform& platform,
                              std::span<const dnn::Layer> layers,
                              std::size_t gpu_level, std::size_t cpu_level,
                              double cpu_load = 0.2);

// Per-layer, frequency-level-invariant terms of the analytic cost model,
// extracted once per graph. The (gpu_level × cpu_slot × layer) CostTable
// fill re-reads these vectors instead of re-deriving the operator-class
// efficiency (one pow per evaluation) and memory time per cell, and the
// adaptation layer's rescaled re-plans reuse one extraction across every
// epoch's refill. Values are stored exactly as LatencyModel::time_layer
// computes them — compute_s at level g is flops[l] / (eff[l] · peak_g)
// with the identical grouping — so a fill from features is bitwise equal
// to the per-cell evaluation (test-asserted against analytic_block_cost).
struct CostFeatures {
  std::size_t num_layers = 0;
  std::vector<double> flops;          // layer FLOPs as double (0 if none)
  std::vector<double> eff;            // LatencyModel::compute_efficiency
  std::vector<double> memory_s;       // bytes / effective_bandwidth, or 0
  std::vector<unsigned char> active;  // 0 for kInput layers

  // Extracts features for `layers` on `platform` (the effective bandwidth
  // is a platform property; features are per (platform, graph)).
  static CostFeatures extract(const Platform& platform,
                              std::span<const dnn::Layer> layers);
};

// The GPU level minimizing energy for the given layers (energy-optimal ==
// EE-optimal at fixed work). Ties resolve to the lower level.
std::size_t optimal_gpu_level(const Platform& platform,
                              std::span<const dnn::Layer> layers,
                              std::size_t cpu_level, double cpu_load = 0.2);

// Cost of one forward pass under a preset DVFS schedule: each layer is
// priced at the level the schedule has switched to by that layer (GPU and,
// when cpu_points are present, CPU), starting from the given initial
// levels. This is the *static prediction* for a plan — the lag-free cost
// the schedule would achieve with instant transitions and no governor,
// faults, or throttling; the serving layer scores simulated actuals
// against it (obs::Residuals).
BlockCost schedule_cost(const Platform& platform,
                        std::span<const dnn::Layer> layers,
                        const PresetSchedule& schedule,
                        std::size_t initial_gpu_level,
                        std::size_t initial_cpu_level, double cpu_load = 0.2);

}  // namespace powerlens::hw
