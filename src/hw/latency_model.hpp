// Roofline latency model for DNN operators on the simulated GPU.
//
// Each layer's execution time at GPU frequency f is
//   t(f) = max(flops / (eff_op * peak_flops(f)),  bytes / (eff_mem * BW))
//        + launch_overhead(f_cpu)
// The compute term scales with the clock; the memory term does not. A layer
// is therefore memory-bound above its "knee" frequency, which is precisely
// what makes low frequencies energy-optimal for memory-bound blocks and
// higher frequencies right for compute-bound ones — the physics PowerLens's
// per-block decisions exploit (paper section 2.1.4).
#pragma once

#include "dnn/layer.hpp"
#include "hw/platform.hpp"

namespace powerlens::hw {

// Timing breakdown of one layer at a fixed frequency pair.
struct LayerTiming {
  double compute_s = 0.0;  // pure ALU time at the given GPU frequency
  double memory_s = 0.0;   // pure DRAM time (frequency independent)
  double launch_s = 0.0;   // host-side kernel launch overhead
  double total_s = 0.0;    // max(compute, memory) + launch

  // Fraction of the execution window the ALUs are busy; drives dynamic power.
  double gpu_activity = 0.0;
  // Fraction of the window a kernel is resident on the GPU. This is what
  // sysfs "load" counters (and thus ondemand/podgov) observe: a GPU stalled
  // on DRAM still counts as busy. Memory-bound kernels therefore look
  // fully loaded to reactive governors — the reason MAXN ondemand pins the
  // maximum frequency even when it buys no throughput.
  double gpu_busy = 0.0;
  // Fraction of peak DRAM bandwidth in use.
  double mem_activity = 0.0;
};

class LatencyModel {
 public:
  explicit LatencyModel(const Platform& platform);

  // Achievable fraction of peak FLOPs for an operator type (kernel
  // efficiency: dense convolutions stream well, depthwise/grouped ones and
  // elementwise kernels do not).
  static double compute_efficiency(const dnn::Layer& layer) noexcept;

  LayerTiming time_layer(const dnn::Layer& layer, double gpu_freq_hz,
                         double cpu_freq_hz) const;

  // Peak arithmetic throughput at a frequency, FLOPs/s.
  double peak_flops(double gpu_freq_hz) const noexcept;
  // Effective DRAM bandwidth, bytes/s.
  double effective_bandwidth() const noexcept;

  // The frequency above which this layer is memory-bound (its compute time
  // drops below its memory time). Returns +inf for pure-compute layers that
  // never saturate, 0 for zero-flop layers.
  double knee_frequency(const dnn::Layer& layer) const noexcept;

 private:
  const Platform* platform_;  // non-owning
};

}  // namespace powerlens::hw
