// Fault-injection seam of the simulated hardware.
//
// The engine, telemetry, and DVFS driver consult this interface at the
// points where real embedded boards misbehave: clock-relock requests that
// silently fail (and stay stuck for a window), thermal events that cap the
// top of the GPU ladder, tegrastats samples that never arrive, and kernels
// that transiently run slow under interference. The interface lives in hw
// so the simulation layer has no dependency on any concrete fault model;
// the seeded deterministic implementation is fault::FaultInjector.
//
// Contract: one FaultModel instance per simulator run. Query times are
// non-decreasing within a run (the engine's clock only moves forward), and
// counters() accumulates over the instance's lifetime, so a fresh instance
// per run yields exact per-run fault accounting.
#pragma once

#include <cstddef>
#include <limits>

namespace powerlens::hw {

// Per-run totals of injected faults; owned by the model (it makes every
// decision), read by the engine into ExecutionResult at run end.
struct FaultCounters {
  std::size_t dvfs_failed = 0;       // transition requests that did not land
  std::size_t thermal_events = 0;    // throttle windows entered
  std::size_t telemetry_dropped = 0; // samples lost from the stream
  std::size_t latency_inflated = 0;  // layers hit by transient slowdown

  FaultCounters& operator+=(const FaultCounters& o) noexcept {
    dvfs_failed += o.dvfs_failed;
    thermal_events += o.thermal_events;
    telemetry_dropped += o.telemetry_dropped;
    latency_inflated += o.latency_inflated;
    return *this;
  }
  bool operator==(const FaultCounters&) const noexcept = default;
};

// Thermal throttle state at a query instant: how many levels are chopped
// off the top of the GPU ladder (0 = uncapped), and the earliest time the
// state may change — the engine bounds its integration slices by `until_s`
// so power integrates exactly across window edges.
struct ThermalState {
  std::size_t levels_off = 0;
  double until_s = std::numeric_limits<double>::infinity();
};

class FaultModel {
 public:
  virtual ~FaultModel() = default;

  // Whether the `request_index`-th GPU DVFS transition request of the run,
  // issued at simulated time `time_s`, fails to actuate (the host still
  // pays the driver stall; the clock keeps its old frequency).
  virtual bool dvfs_request_fails(std::size_t request_index,
                                  double time_s) = 0;

  // Thermal cap in effect at `time_s`. Queries must be non-decreasing in
  // time within a run.
  virtual ThermalState thermal_at(double time_s) = 0;

  // Whether the `sample_index`-th telemetry sample of the run is lost.
  // The energy integral is unaffected — only the sample stream thins.
  virtual bool drop_telemetry_sample(std::size_t sample_index) = 0;

  // Latency multiplier (>= 1) for the `layer_ordinal`-th executed layer.
  virtual double layer_latency_factor(std::size_t layer_ordinal) = 0;

  virtual const FaultCounters& counters() const noexcept = 0;
};

}  // namespace powerlens::hw
