#include "hw/telemetry.hpp"

#include "hw/fault_hooks.hpp"

#include <stdexcept>

namespace powerlens::hw {

Telemetry::Telemetry(double period_s) : period_s_(period_s) {
  if (period_s <= 0.0) {
    throw std::invalid_argument("Telemetry: period must be positive");
  }
}

void Telemetry::emit_sample(double time_s, double power_w) {
  const std::size_t index = emitted_++;
  if (fault_model_ != nullptr && fault_model_->drop_telemetry_sample(index)) {
    ++dropped_;
    return;
  }
  samples_.push_back({time_s, power_w});
}

void Telemetry::record_slice(double t_start_s, double dt_s, double power_w) {
  if (dt_s < 0.0) throw std::invalid_argument("Telemetry: negative slice");
  total_energy_j_ += power_w * dt_s;
  // Round-off guard: windows within this of full are emitted, and slivers
  // below it are dropped (from the sample stream only — total_energy_j_
  // above already integrated them), so 1.0 s at period 0.1 yields exactly
  // 10 samples.
  const double eps = period_s_ * 1e-9;
  double remaining = dt_s;
  double t = t_start_s;
  while (remaining > eps) {
    const double window_left = period_s_ - window_elapsed_s_;
    const double take = remaining < window_left ? remaining : window_left;
    window_energy_j_ += power_w * take;
    window_elapsed_s_ += take;
    t += take;
    remaining -= take;
    if (window_elapsed_s_ >= period_s_ - eps) {
      emit_sample(t, window_energy_j_ / window_elapsed_s_);
      window_energy_j_ = 0.0;
      window_elapsed_s_ = 0.0;
    }
  }
}

void Telemetry::finish(double end_time_s) {
  if (window_elapsed_s_ > period_s_ * 1e-9) {
    emit_sample(end_time_s, window_energy_j_ / window_elapsed_s_);
  }
  // Reset unconditionally: a sub-epsilon residual must not leak into the
  // next window if recording resumes after finish().
  window_energy_j_ = 0.0;
  window_elapsed_s_ = 0.0;
}

double Telemetry::mean_power_w() const noexcept {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (const PowerSample& p : samples_) s += p.power_w;
  return s / static_cast<double>(samples_.size());
}

double Telemetry::peak_power_w() const noexcept {
  double peak = 0.0;
  for (const PowerSample& p : samples_) {
    if (p.power_w > peak) peak = p.power_w;
  }
  return peak;
}

}  // namespace powerlens::hw
