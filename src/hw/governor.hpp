// Runtime DVFS governor interface.
//
// Reactive governors (ondemand/BiM, FPG) observe utilization and power over a
// sampling window and request frequency-level changes — exactly the
// history-driven paradigm of Figure 1(A), complete with the lag and
// ping-pong the paper criticizes. PowerLens itself does not implement this
// interface; it presets a schedule (hw::PresetSchedule) instead.
#pragma once

#include "hw/platform.hpp"

#include <cstddef>
#include <optional>
#include <string_view>
#include <vector>

namespace powerlens::hw {

// Aggregated observations over one sampling window, the analogue of what a
// real governor reads from sysfs load counters and the power rails.
struct GovernorSample {
  double time_s = 0.0;     // end of the window
  double window_s = 0.0;   // window duration
  // Mean kernel-resident (busy) fraction — the sysfs "load" a real governor
  // reads. Memory stalls count as busy, so DNN inference reads near 1.0.
  double gpu_util = 0.0;
  // Mean ALU-activity fraction — actual compute throughput achieved. Only
  // model-aware heuristics (FPG's EDP proxy) exploit this.
  double gpu_compute_util = 0.0;
  double mem_util = 0.0;   // mean DRAM-bandwidth fraction
  double cpu_util = 0.0;   // mean host CPU load
  double power_w = 0.0;    // mean board power
  double throughput = 0.0; // images retired per second over the window
  std::size_t gpu_level = 0;
  std::size_t cpu_level = 0;
};

struct GovernorDecision {
  std::optional<std::size_t> gpu_level;
  std::optional<std::size_t> cpu_level;
};

class Governor {
 public:
  virtual ~Governor() = default;

  // Called once before a run; governors reset history here.
  virtual void reset(const Platform& platform) = 0;
  virtual double sample_period_s() const noexcept = 0;
  virtual GovernorDecision on_sample(const GovernorSample& sample) = 0;
  virtual std::string_view name() const noexcept = 0;
};

// A preset DVFS instrumentation plan: when execution reaches layer
// `layer_index` (of each forward pass), the GPU is switched to `gpu_level`.
// This is the output of PowerLens's offline pipeline (paper section 2.1.4).
struct PresetPoint {
  std::size_t layer_index = 0;
  std::size_t gpu_level = 0;

  bool operator==(const PresetPoint&) const noexcept = default;
};

struct PresetSchedule {
  std::vector<PresetPoint> points;  // sorted by layer_index, unique indices
  // Optional CPU presets (the paper's future-work extension: "incorporate
  // more configurable optimization options, such as CPU DVFS"). Same layout;
  // gpu_level is reinterpreted as a CPU ladder level.
  std::vector<PresetPoint> cpu_points;

  // Level preset for a layer index, if any.
  std::optional<std::size_t> level_at(std::size_t layer_index) const {
    return find(points, layer_index);
  }
  std::optional<std::size_t> cpu_level_at(std::size_t layer_index) const {
    return find(cpu_points, layer_index);
  }

  bool operator==(const PresetSchedule&) const noexcept = default;

 private:
  static std::optional<std::size_t> find(const std::vector<PresetPoint>& pts,
                                         std::size_t layer_index) {
    for (const PresetPoint& p : pts) {
      if (p.layer_index == layer_index) return p.gpu_level;
      if (p.layer_index > layer_index) break;
    }
    return std::nullopt;
  }
};

}  // namespace powerlens::hw
