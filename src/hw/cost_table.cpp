#include "hw/cost_table.hpp"

#include "linalg/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace powerlens::hw {

CostTable::CostTable(const Platform& platform,
                     std::span<const dnn::Layer> layers, double cpu_load) {
  std::vector<std::size_t> all(platform.cpu_levels());
  std::iota(all.begin(), all.end(), std::size_t{0});
  init(platform, CostFeatures::extract(platform, layers), all, cpu_load);
}

CostTable::CostTable(const Platform& platform,
                     std::span<const dnn::Layer> layers,
                     std::span<const std::size_t> cpu_levels, double cpu_load) {
  init(platform, CostFeatures::extract(platform, layers), cpu_levels,
       cpu_load);
}

CostTable::CostTable(const Platform& platform, const CostFeatures& features,
                     std::span<const std::size_t> cpu_levels,
                     double cpu_load) {
  init(platform, features, cpu_levels, cpu_load);
}

CostTable::CostTable(const CostTable& other) { *this = other; }

CostTable& CostTable::operator=(const CostTable& other) {
  if (this == &other) return *this;
  num_layers_ = other.num_layers_;
  gpu_levels_ = other.gpu_levels_;
  cpu_slot_ = other.cpu_slot_;
  cpu_slots_ = other.cpu_slots_;
  view_mode_ = other.view_mode_;
  if (other.owns_storage()) {
    // Owning source: copy the arrays and REBIND the query spans to this
    // object's vectors — sharing the source's spans would dangle once the
    // source dies, and a previously view-backed destination must drop its
    // external aliases.
    time_prefix_ = other.time_prefix_;
    energy_prefix_ = other.energy_prefix_;
    time_view_ = time_prefix_;
    energy_view_ = energy_prefix_;
  } else {
    // View-backed source: share the external (mmap'd) memory and release
    // any storage the destination used to own.
    time_prefix_.clear();
    time_prefix_.shrink_to_fit();
    energy_prefix_.clear();
    energy_prefix_.shrink_to_fit();
    time_view_ = other.time_view_;
    energy_view_ = other.energy_view_;
  }
  return *this;
}

void CostTable::init(const Platform& platform, const CostFeatures& features,
                     std::span<const std::size_t> cpu_levels,
                     double cpu_load) {
  num_layers_ = features.num_layers;
  gpu_levels_ = platform.gpu_levels();
  cpu_slot_.assign(platform.cpu_levels(), kNoSlot);
  for (const std::size_t c : cpu_levels) {
    if (c >= platform.cpu_levels()) {
      throw std::out_of_range("CostTable: cpu level out of range");
    }
    if (cpu_slot_[c] == kNoSlot) cpu_slot_[c] = cpu_slots_++;
  }
  if (cpu_slots_ == 0) {
    throw std::invalid_argument("CostTable: no cpu levels requested");
  }

  const std::size_t run = num_layers_ + 1;
  time_prefix_.assign(gpu_levels_ * cpu_slots_ * run, 0.0);
  energy_prefix_.assign(gpu_levels_ * cpu_slots_ * run, 0.0);

  // Layer-major fill: all level-dependent scalars are hoisted out of the
  // per-layer loop — the gpu voltage pow pair per gpu level, the cpu
  // voltage pow per cpu level, the occupancy pow per layer (inside
  // features.eff, extracted once per graph). The per-plane pass then runs
  // pure per-layer arithmetic through the kernel dispatch seam
  // (cost_plane_fill), and the serial prefix accumulation below adds the
  // SAME per-layer values in the SAME order as the per-cell evaluation, so
  // every prefix entry is bitwise identical to analytic_block_cost from
  // layer 0 (test-asserted).
  const PowerModel power(platform);
  const GpuSpec& gpu = platform.gpu;
  const CpuSpec& cpu = platform.cpu;
  std::vector<double> layer_time(num_layers_);
  std::vector<double> layer_energy(num_layers_);

  for (std::size_t g = 0; g < gpu_levels_; ++g) {
    const double gpu_f = platform.gpu_freq(g);
    const double v = power.gpu_voltage(gpu_f);
    linalg::kernels::CostPlaneTerms terms;
    // Same association as LatencyModel::peak_flops and
    // PowerModel::gpu_dynamic_w/gpu_static_w: the hoisted products are the
    // left-associative prefixes of the per-cell expressions.
    terms.peak = static_cast<double>(gpu.cuda_cores) *
                 gpu.flops_per_core_per_cycle * gpu_f;
    terms.dyn_coeff = gpu.c_eff * v * v * gpu_f;
    terms.static_w = gpu.static_w_per_volt * v;
    terms.stall = gpu.stall_activity;
    terms.mem_w = platform.mem.active_power_w;
    terms.base_w = platform.base_power_w;
    for (std::size_t c = 0; c < cpu_slot_.size(); ++c) {
      if (cpu_slot_[c] == kNoSlot) continue;
      const double cpu_f = platform.cpu_freq(c);
      terms.launch_s =
          cpu.launch_overhead_s * (cpu.freqs_hz.back() / cpu_f);
      terms.cpu_w = power.cpu_power_w(cpu_f, cpu_load);
      linalg::kernels::cost_plane_fill(
          num_layers_, features.flops.data(), features.eff.data(),
          features.memory_s.data(), features.active.data(), terms,
          layer_time.data(), layer_energy.data());

      const std::size_t base = (g * cpu_slots_ + cpu_slot_[c]) * run;
      double t = 0.0;
      double e = 0.0;
      for (std::size_t i = 0; i < num_layers_; ++i) {
        // Same accumulation as analytic_block_cost: kInput contributes 0.
        if (features.active[i]) {
          t += layer_time[i];
          e += layer_energy[i];
        }
        time_prefix_[base + i + 1] = t;
        energy_prefix_[base + i + 1] = e;
      }
    }
  }
  time_view_ = time_prefix_;
  energy_view_ = energy_prefix_;
}

void CostTable::validate_parts(std::size_t num_layers, std::size_t gpu_levels,
                               std::span<const std::size_t> cpu_slot,
                               std::size_t cpu_slots,
                               std::span<const double> time_prefix,
                               std::span<const double> energy_prefix) {
  if (gpu_levels == 0) {
    throw std::invalid_argument("CostTable: zero gpu levels");
  }
  if (cpu_slots == 0 || cpu_slots > cpu_slot.size()) {
    throw std::invalid_argument("CostTable: bad cpu slot count");
  }
  // Slot assignments must be a bijection onto [0, cpu_slots).
  std::vector<bool> seen(cpu_slots, false);
  std::size_t assigned = 0;
  for (const std::size_t s : cpu_slot) {
    if (s == kNoSlot) continue;
    if (s >= cpu_slots || seen[s]) {
      throw std::invalid_argument("CostTable: invalid cpu slot assignment");
    }
    seen[s] = true;
    ++assigned;
  }
  if (assigned != cpu_slots) {
    throw std::invalid_argument("CostTable: unassigned cpu slots");
  }
  const std::size_t expect = gpu_levels * cpu_slots * (num_layers + 1);
  if (time_prefix.size() != expect || energy_prefix.size() != expect) {
    throw std::invalid_argument("CostTable: prefix array size mismatch");
  }
}

CostTable CostTable::from_parts(std::size_t num_layers, std::size_t gpu_levels,
                                std::vector<std::size_t> cpu_slot,
                                std::size_t cpu_slots,
                                std::vector<double> time_prefix,
                                std::vector<double> energy_prefix) {
  validate_parts(num_layers, gpu_levels, cpu_slot, cpu_slots, time_prefix,
                 energy_prefix);
  CostTable t;
  t.num_layers_ = num_layers;
  t.gpu_levels_ = gpu_levels;
  t.cpu_slot_ = std::move(cpu_slot);
  t.cpu_slots_ = cpu_slots;
  t.time_prefix_ = std::move(time_prefix);
  t.energy_prefix_ = std::move(energy_prefix);
  t.time_view_ = t.time_prefix_;
  t.energy_view_ = t.energy_prefix_;
  return t;
}

CostTable CostTable::from_view(std::size_t num_layers, std::size_t gpu_levels,
                               std::vector<std::size_t> cpu_slot,
                               std::size_t cpu_slots,
                               std::span<const double> time_prefix,
                               std::span<const double> energy_prefix) {
  validate_parts(num_layers, gpu_levels, cpu_slot, cpu_slots, time_prefix,
                 energy_prefix);
  CostTable t;
  t.num_layers_ = num_layers;
  t.gpu_levels_ = gpu_levels;
  t.cpu_slot_ = std::move(cpu_slot);
  t.cpu_slots_ = cpu_slots;
  t.view_mode_ = true;
  t.time_view_ = time_prefix;
  t.energy_view_ = energy_prefix;
  return t;
}

CostTable::Raw CostTable::raw() const noexcept {
  Raw r;
  r.num_layers = num_layers_;
  r.gpu_levels = gpu_levels_;
  r.cpu_slot = cpu_slot_;
  r.cpu_slots = cpu_slots_;
  r.time_prefix = time_view_;
  r.energy_prefix = energy_view_;
  return r;
}

bool CostTable::operator==(const CostTable& other) const noexcept {
  return num_layers_ == other.num_layers_ &&
         gpu_levels_ == other.gpu_levels_ && cpu_slot_ == other.cpu_slot_ &&
         cpu_slots_ == other.cpu_slots_ &&
         std::ranges::equal(time_view_, other.time_view_) &&
         std::ranges::equal(energy_view_, other.energy_view_);
}

bool CostTable::has_cpu_level(std::size_t cpu_level) const noexcept {
  return cpu_level < cpu_slot_.size() && cpu_slot_[cpu_level] != kNoSlot;
}

std::size_t CostTable::plane(std::size_t gpu_level,
                             std::size_t cpu_level) const {
  if (gpu_level >= gpu_levels_) {
    throw std::out_of_range("CostTable: gpu level out of range");
  }
  if (!has_cpu_level(cpu_level)) {
    throw std::out_of_range("CostTable: cpu level not precomputed");
  }
  return gpu_level * cpu_slots_ + cpu_slot_[cpu_level];
}

BlockCost CostTable::block_cost(std::size_t begin, std::size_t end,
                                std::size_t gpu_level,
                                std::size_t cpu_level) const {
  if (begin > end || end > num_layers_) {
    throw std::out_of_range("CostTable: bad layer range");
  }
  const std::size_t base = plane(gpu_level, cpu_level) * (num_layers_ + 1);
  return {time_view_[base + end] - time_view_[base + begin],
          energy_view_[base + end] - energy_view_[base + begin]};
}

std::size_t CostTable::optimal_gpu_level(std::size_t begin, std::size_t end,
                                         std::size_t cpu_level) const {
  return optimal_gpu_level(begin, end, cpu_level, gpu_levels_ - 1);
}

std::size_t CostTable::optimal_gpu_level(std::size_t begin, std::size_t end,
                                         std::size_t cpu_level,
                                         std::size_t max_gpu_level) const {
  const std::size_t top = std::min(max_gpu_level, gpu_levels_ - 1);
  std::size_t best = 0;
  double best_energy = -1.0;
  for (std::size_t level = 0; level <= top; ++level) {
    const double e = block_cost(begin, end, level, cpu_level).energy_j;
    if (best_energy < 0.0 || e < best_energy) {
      best_energy = e;
      best = level;
    }
  }
  return best;
}

CostTable CostTable::scaled(double time_factor, double energy_factor) const {
  if (!std::isfinite(time_factor) || time_factor <= 0.0 ||
      !std::isfinite(energy_factor) || energy_factor <= 0.0) {
    throw std::invalid_argument("CostTable: scale factors must be positive");
  }
  CostTable t;
  t.num_layers_ = num_layers_;
  t.gpu_levels_ = gpu_levels_;
  t.cpu_slot_ = cpu_slot_;
  t.cpu_slots_ = cpu_slots_;
  t.time_prefix_.assign(time_view_.begin(), time_view_.end());
  t.energy_prefix_.assign(energy_view_.begin(), energy_view_.end());
  for (double& v : t.time_prefix_) v *= time_factor;
  for (double& v : t.energy_prefix_) v *= energy_factor;
  t.time_view_ = t.time_prefix_;
  t.energy_view_ = t.energy_prefix_;
  return t;
}

}  // namespace powerlens::hw
