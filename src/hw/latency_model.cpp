#include "hw/latency_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace powerlens::hw {

LatencyModel::LatencyModel(const Platform& platform) : platform_(&platform) {}

namespace {

// Occupancy factor: kernels over small output tensors cannot fill the SM
// array (tail effect), so their achieved FLOPs fall well below the
// streaming-kernel rate. Late CNN stages (7x7 feature maps) are the classic
// case — they end up compute-bound and favour higher clocks, while early
// high-resolution stages are bandwidth-bound and favour low ones.
double occupancy_factor(const dnn::Layer& layer) noexcept {
  constexpr double kSaturationElems = 4.0e5;
  const double elems = static_cast<double>(layer.output.elements());
  if (elems >= kSaturationElems) return 1.0;
  const double f = std::pow(elems / kSaturationElems, 0.3);
  return f < 0.45 ? 0.45 : f;
}

}  // namespace

double LatencyModel::compute_efficiency(const dnn::Layer& layer) noexcept {
  using dnn::OpType;
  double base;
  switch (layer.type) {
    case OpType::kConv2d:
      // Grouped/depthwise convolutions underutilize the SIMT lanes badly.
      if (layer.conv.groups > 1) {
        base = layer.conv.depthwise(layer.input.c) ? 0.12 : 0.30;
      } else {
        // 1x1 convolutions are GEMM-like; larger kernels stream better.
        base = layer.conv.kernel_h == 1 ? 0.50 : 0.55;
      }
      break;
    case OpType::kLinear:
      base = 0.65;
      break;
    case OpType::kMultiHeadAttention:
      base = 0.45;
      break;
    case OpType::kPatchEmbed:
      base = 0.50;
      break;
    case OpType::kInput:
      return 1.0;
    default:
      // Elementwise / pooling / normalization kernels are bandwidth-bound;
      // their tiny arithmetic runs far from peak.
      return 0.10;
  }
  return base * occupancy_factor(layer);
}

double LatencyModel::peak_flops(double gpu_freq_hz) const noexcept {
  return static_cast<double>(platform_->gpu.cuda_cores) *
         platform_->gpu.flops_per_core_per_cycle * gpu_freq_hz;
}

double LatencyModel::effective_bandwidth() const noexcept {
  return platform_->mem.bandwidth_bytes_per_s * platform_->mem.efficiency /
         platform_->mem.traffic_amplification;
}

double LatencyModel::knee_frequency(const dnn::Layer& layer) const noexcept {
  if (layer.flops <= 0) return 0.0;
  if (layer.mem_bytes <= 0) return std::numeric_limits<double>::infinity();
  const double eff = compute_efficiency(layer);
  const double per_hz = static_cast<double>(platform_->gpu.cuda_cores) *
                        platform_->gpu.flops_per_core_per_cycle * eff;
  const double t_mem =
      static_cast<double>(layer.mem_bytes) / effective_bandwidth();
  // compute time = flops / (per_hz * f) == t_mem  =>  f = flops/(per_hz*t_mem)
  return static_cast<double>(layer.flops) / (per_hz * t_mem);
}

LayerTiming LatencyModel::time_layer(const dnn::Layer& layer,
                                     double gpu_freq_hz,
                                     double cpu_freq_hz) const {
  LayerTiming t;
  if (layer.type == dnn::OpType::kInput) return t;

  const double eff = compute_efficiency(layer);
  t.compute_s = layer.flops > 0
                    ? static_cast<double>(layer.flops) /
                          (eff * peak_flops(gpu_freq_hz))
                    : 0.0;
  t.memory_s = layer.mem_bytes > 0
                   ? static_cast<double>(layer.mem_bytes) /
                         effective_bandwidth()
                   : 0.0;
  t.launch_s = platform_->cpu.launch_overhead_s *
               (platform_->cpu.freqs_hz.back() / cpu_freq_hz);

  const double kernel_s = std::max(t.compute_s, t.memory_s);
  t.total_s = kernel_s + t.launch_s;
  if (kernel_s > 0.0) {
    t.gpu_busy = kernel_s / t.total_s;
    // While the kernel is resident, dynamic activity is the ALU duty cycle
    // but never below the stall floor: a memory-stalled SM keeps its
    // schedulers, caches, and memory path toggling.
    const double duty = std::max(t.compute_s / kernel_s,
                                 platform_->gpu.stall_activity);
    t.gpu_activity = duty * t.gpu_busy;
    t.mem_activity = std::min(1.0, t.memory_s / kernel_s) * t.gpu_busy;
  }
  return t;
}

}  // namespace powerlens::hw
