#include "hw/analytic.hpp"

namespace powerlens::hw {

BlockCost analytic_block_cost(const Platform& platform,
                              std::span<const dnn::Layer> layers,
                              std::size_t gpu_level, std::size_t cpu_level,
                              double cpu_load) {
  const LatencyModel latency(platform);
  const PowerModel power(platform);
  const double gpu_f = platform.gpu_freq(gpu_level);
  const double cpu_f = platform.cpu_freq(cpu_level);

  BlockCost cost;
  for (const dnn::Layer& l : layers) {
    if (l.type == dnn::OpType::kInput) continue;
    const LayerTiming t = latency.time_layer(l, gpu_f, cpu_f);
    const ActivityState act{t.gpu_activity, t.mem_activity, cpu_load};
    cost.time_s += t.total_s;
    cost.energy_j += power.total_w(gpu_f, cpu_f, act) * t.total_s;
  }
  return cost;
}

std::size_t optimal_gpu_level(const Platform& platform,
                              std::span<const dnn::Layer> layers,
                              std::size_t cpu_level, double cpu_load) {
  std::size_t best = 0;
  double best_energy = -1.0;
  for (std::size_t level = 0; level < platform.gpu_levels(); ++level) {
    const BlockCost c =
        analytic_block_cost(platform, layers, level, cpu_level, cpu_load);
    if (best_energy < 0.0 || c.energy_j < best_energy) {
      best_energy = c.energy_j;
      best = level;
    }
  }
  return best;
}

}  // namespace powerlens::hw
