#include "hw/analytic.hpp"

#include "hw/cost_table.hpp"

namespace powerlens::hw {

BlockCost analytic_block_cost(const Platform& platform,
                              std::span<const dnn::Layer> layers,
                              std::size_t gpu_level, std::size_t cpu_level,
                              double cpu_load) {
  const LatencyModel latency(platform);
  const PowerModel power(platform);
  const double gpu_f = platform.gpu_freq(gpu_level);
  const double cpu_f = platform.cpu_freq(cpu_level);

  BlockCost cost;
  for (const dnn::Layer& l : layers) {
    if (l.type == dnn::OpType::kInput) continue;
    const LayerTiming t = latency.time_layer(l, gpu_f, cpu_f);
    const ActivityState act{t.gpu_activity, t.mem_activity, cpu_load};
    cost.time_s += t.total_s;
    cost.energy_j += power.total_w(gpu_f, cpu_f, act) * t.total_s;
  }
  return cost;
}

BlockCost schedule_cost(const Platform& platform,
                        std::span<const dnn::Layer> layers,
                        const PresetSchedule& schedule,
                        std::size_t initial_gpu_level,
                        std::size_t initial_cpu_level, double cpu_load) {
  const LatencyModel latency(platform);
  const PowerModel power(platform);
  std::size_t gpu_level = initial_gpu_level;
  std::size_t cpu_level = initial_cpu_level;

  BlockCost cost;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    // Apply presets before pricing the layer — the engine switches at the
    // block boundary, before executing the boundary layer.
    if (const auto level = schedule.level_at(i)) gpu_level = *level;
    if (const auto level = schedule.cpu_level_at(i)) cpu_level = *level;
    const dnn::Layer& l = layers[i];
    if (l.type == dnn::OpType::kInput) continue;
    const double gpu_f = platform.gpu_freq(gpu_level);
    const double cpu_f = platform.cpu_freq(cpu_level);
    const LayerTiming t = latency.time_layer(l, gpu_f, cpu_f);
    const ActivityState act{t.gpu_activity, t.mem_activity, cpu_load};
    cost.time_s += t.total_s;
    cost.energy_j += power.total_w(gpu_f, cpu_f, act) * t.total_s;
  }
  return cost;
}

CostFeatures CostFeatures::extract(const Platform& platform,
                                   std::span<const dnn::Layer> layers) {
  const LatencyModel latency(platform);
  CostFeatures f;
  f.num_layers = layers.size();
  f.flops.resize(layers.size());
  f.eff.resize(layers.size());
  f.memory_s.resize(layers.size());
  f.active.resize(layers.size());
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const dnn::Layer& layer = layers[l];
    if (layer.type == dnn::OpType::kInput) continue;  // row stays zeroed
    f.active[l] = 1;
    f.flops[l] =
        layer.flops > 0 ? static_cast<double>(layer.flops) : 0.0;
    f.eff[l] = LatencyModel::compute_efficiency(layer);
    f.memory_s[l] = layer.mem_bytes > 0
                        ? static_cast<double>(layer.mem_bytes) /
                              latency.effective_bandwidth()
                        : 0.0;
  }
  return f;
}

std::size_t optimal_gpu_level(const Platform& platform,
                              std::span<const dnn::Layer> layers,
                              std::size_t cpu_level, double cpu_load) {
  // One-cpu-plane table: same total work as the direct ladder scan, and the
  // prefix accumulation from layer 0 is bitwise identical to it, so this is
  // purely a shared code path with CostTable::optimal_gpu_level.
  const std::size_t cpu_levels[] = {cpu_level};
  const CostTable table(platform, layers, cpu_levels, cpu_load);
  return table.optimal_gpu_level(0, layers.size(), cpu_level);
}

}  // namespace powerlens::hw
