// Analytic power model for the simulated platforms.
//
// Board power decomposes into:
//   P = P_gpu_dyn(V, f, activity) + P_gpu_static(V)
//     + P_cpu_dyn + P_cpu_static
//     + P_mem(bandwidth utilization) + P_base
// with the classic CMOS dynamic term C_eff * V^2 * f * activity and a
// leakage term linear in V. The voltage/frequency curve interpolates
// between (f_min, V_min) and (f_max, V_max) with a configurable exponent —
// embedded GPU rails rise sharply near f_max, which is exactly the region
// DVFS exploits.
#pragma once

#include "hw/platform.hpp"

namespace powerlens::hw {

// Instantaneous activity factors observed over a simulation slice.
struct ActivityState {
  double gpu_compute = 0.0;  // fraction of the slice the ALUs were busy
  double mem = 0.0;          // fraction of peak DRAM bandwidth in use
  double cpu = 0.0;          // host CPU load fraction
};

class PowerModel {
 public:
  explicit PowerModel(const Platform& platform);

  // GPU core voltage at a ladder frequency (interpolated for mid values).
  double gpu_voltage(double freq_hz) const noexcept;
  double cpu_voltage(double freq_hz) const noexcept;

  double gpu_dynamic_w(double freq_hz, double activity) const noexcept;
  double gpu_static_w(double freq_hz) const noexcept;
  double cpu_power_w(double freq_hz, double load) const noexcept;
  double mem_power_w(double bandwidth_fraction) const noexcept;

  // Total board power for a slice.
  double total_w(double gpu_freq_hz, double cpu_freq_hz,
                 const ActivityState& activity) const noexcept;

  double base_power_w() const noexcept { return platform_->base_power_w; }

 private:
  static double interp_voltage(double freq_hz, double f_min, double f_max,
                               double v_min, double v_max,
                               double exponent) noexcept;

  const Platform* platform_;  // non-owning; Platform outlives the model
};

}  // namespace powerlens::hw
