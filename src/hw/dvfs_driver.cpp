#include "hw/dvfs_driver.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace powerlens::hw {

SimDvfsDriver::SimDvfsDriver(const Platform& platform)
    : platform_(&platform), level_(platform.max_gpu_level()) {}

bool SimDvfsDriver::set_gpu_level(std::size_t level) {
  if (level >= platform_->gpu_levels()) {
    throw std::out_of_range("SimDvfsDriver: level out of range");
  }
  if (level != level_) {
    level_ = level;
    ++transitions_;
  }
  return true;
}

SysfsDvfsDriver::SysfsDvfsDriver(const Platform& platform,
                                 std::string devfreq_path)
    : platform_(&platform),
      path_(std::move(devfreq_path)),
      level_(platform.max_gpu_level()) {
  if (path_.empty()) {
    throw std::invalid_argument("SysfsDvfsDriver: empty devfreq path");
  }
}

bool SysfsDvfsDriver::available() const {
  const std::ifstream probe(path_ + "/available_frequencies");
  return probe.good();
}

bool SysfsDvfsDriver::set_gpu_level(std::size_t level) {
  if (level >= platform_->gpu_levels()) {
    throw std::out_of_range("SysfsDvfsDriver: level out of range");
  }
  // Pinning the clock means equal min and max frequency — exactly what
  // jetson_clocks does to lock MAXN clocks.
  const long long hz =
      static_cast<long long>(platform_->gpu_freq(level));
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", hz);

  std::ofstream min_f(path_ + "/min_freq");
  std::ofstream max_f(path_ + "/max_freq");
  if (!min_f || !max_f) return false;
  // Write order matters on devfreq: raising min above the current max is
  // rejected, so set max first when climbing and min first when dropping.
  if (static_cast<long long>(platform_->gpu_freq(level_)) < hz) {
    max_f << buf << '\n';
    min_f << buf << '\n';
  } else {
    min_f << buf << '\n';
    max_f << buf << '\n';
  }
  if (!min_f || !max_f) return false;
  level_ = level;
  return true;
}

}  // namespace powerlens::hw
