// Shared-pool parallelism for the offline phase.
//
// The offline pipeline (dataset generation, grid sweeps, minibatch gradient
// accumulation) is embarrassingly parallel at coarse granularity, and every
// parallel site in this codebase writes results into per-index slots, so the
// only primitive needed is a chunked parallel_for. Scheduling is static
// chunking with dynamic lane claiming: the index range is cut into at most
// `max_parallelism` contiguous lanes and idle workers (plus the calling
// thread) claim whole lanes until none remain. Because outputs are keyed by
// index — never by thread — results are bit-identical for any thread count,
// including 1.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace powerlens::util {

// Thread-count knob plumbed through DatasetGenConfig / TrainConfig /
// PowerLensConfig. 0 means "auto": the POWERLENS_NUM_THREADS environment
// variable if set to a positive integer, otherwise hardware concurrency.
struct ParallelConfig {
  std::size_t num_threads = 0;

  std::size_t resolved() const;
};

class ThreadPool {
 public:
  // Spawns num_threads - 1 workers; the caller of parallel_for is always the
  // remaining lane runner, so ThreadPool(1) is a purely serial pool.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Worker threads + the calling thread.
  std::size_t size() const noexcept { return workers_.size() + 1; }

  // Runs body(i) for every i in [begin, end). The range is split into at
  // most max_parallelism contiguous lanes claimed dynamically by workers and
  // the caller; lanes may exceed the worker count (they queue). Blocks until
  // the whole range is done; the first exception thrown by `body` is
  // rethrown here. Nested calls from inside a lane run inline (serial) to
  // avoid deadlock.
  void parallel_for(std::size_t begin, std::size_t end,
                    std::size_t max_parallelism,
                    const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();
  void run_lane(std::size_t lane);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;

  // Current job, valid while lanes_remaining_ + lanes_active_ > 0. The
  // plain fields are written by the caller under mu_ before workers are
  // woken and read by workers after they acquire mu_ to claim a lane.
  std::uint64_t generation_ = 0;
  std::size_t begin_ = 0;
  std::size_t end_ = 0;
  std::size_t num_lanes_ = 0;
  std::size_t lanes_remaining_ = 0;  // not yet claimed
  std::size_t lanes_active_ = 0;     // claimed, still running
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::exception_ptr error_;
};

// Process-wide pool, created on first use and sized to the auto-resolved
// thread count (POWERLENS_NUM_THREADS or hardware concurrency).
ThreadPool& global_pool();

// Convenience wrapper: runs body(i) over [begin, end) on the global pool
// with at most par.resolved() lanes; degenerates to a plain loop when the
// resolved count or the range is 1.
void parallel_for(const ParallelConfig& par, std::size_t begin,
                  std::size_t end,
                  const std::function<void(std::size_t)>& body);

}  // namespace powerlens::util
