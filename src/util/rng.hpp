// Deterministic RNG stream splitting for parallel dataset generation.
//
// Each random network gets its own generator seeded from (base seed, network
// index), so the sequence of networks is a pure function of the config and
// invariant to how the index range is scheduled across threads. A plain
// `seed ^ index` would hand std::mt19937_64 nearly identical seeds for
// consecutive indices; finalizing the combination through SplitMix64 (the
// mixer Vigna recommends for exactly this purpose) decorrelates the streams.
#pragma once

#include <cstdint>

namespace powerlens::util {

// One step of the SplitMix64 output function.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Stream seed for `index` under `seed`; distinct indices yield decorrelated
// generator states even for adjacent seeds/indices.
constexpr std::uint64_t split_seed(std::uint64_t seed,
                                   std::uint64_t index) noexcept {
  return splitmix64(splitmix64(seed) ^ splitmix64(index + 1));
}

}  // namespace powerlens::util
