#include "util/thread_pool.hpp"

#include "obs/log.hpp"

#include <algorithm>
#include <cstdlib>

namespace powerlens::util {

namespace {

// Set while the current thread is executing a lane; nested parallel_for
// calls from inside a lane body run inline instead of re-entering the pool.
thread_local bool t_in_lane = false;

}  // namespace

std::size_t ParallelConfig::resolved() const {
  if (num_threads > 0) return num_threads;
  if (const char* env = std::getenv("POWERLENS_NUM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
    // Previously a bad value fell through silently to hardware_concurrency;
    // say so once instead.
    static const bool warned = [env] {
      obs::log_warn("thread_pool",
                    "ignoring unparseable POWERLENS_NUM_THREADS",
                    {{"value", env}});
      return true;
    }();
    (void)warned;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? hc : 1;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t workers = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_lane(std::size_t lane) {
  const std::size_t n = end_ - begin_;
  const std::size_t chunk = (n + num_lanes_ - 1) / num_lanes_;
  const std::size_t lo = begin_ + lane * chunk;
  const std::size_t hi = std::min(end_, lo + chunk);
  t_in_lane = true;
  try {
    for (std::size_t i = lo; i < hi; ++i) (*body_)(i);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!error_) error_ = std::current_exception();
  }
  t_in_lane = false;
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen = 0;
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || (generation_ != seen && lanes_remaining_ > 0);
    });
    if (stop_) return;
    seen = generation_;
    while (lanes_remaining_ > 0) {
      const std::size_t lane = num_lanes_ - lanes_remaining_;
      --lanes_remaining_;
      ++lanes_active_;
      lock.unlock();
      run_lane(lane);
      lock.lock();
      --lanes_active_;
      if (lanes_remaining_ == 0 && lanes_active_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              std::size_t max_parallelism,
                              const std::function<void(std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  const std::size_t lanes = std::min(std::max<std::size_t>(max_parallelism, 1),
                                     n);
  if (lanes <= 1 || t_in_lane) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  std::unique_lock<std::mutex> lock(mu_);
  begin_ = begin;
  end_ = end;
  num_lanes_ = lanes;
  lanes_remaining_ = lanes;
  lanes_active_ = 0;
  body_ = &body;
  error_ = nullptr;
  ++generation_;
  lock.unlock();
  work_cv_.notify_all();

  lock.lock();
  while (lanes_remaining_ > 0) {
    const std::size_t lane = num_lanes_ - lanes_remaining_;
    --lanes_remaining_;
    ++lanes_active_;
    lock.unlock();
    run_lane(lane);
    lock.lock();
    --lanes_active_;
  }
  done_cv_.wait(lock, [&] {
    return lanes_remaining_ == 0 && lanes_active_ == 0;
  });
  body_ = nullptr;
  if (error_) std::rethrow_exception(error_);
}

ThreadPool& global_pool() {
  static ThreadPool pool(ParallelConfig{}.resolved());
  return pool;
}

void parallel_for(const ParallelConfig& par, std::size_t begin,
                  std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  const std::size_t threads = par.resolved();
  if (threads <= 1 || end <= begin + 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  global_pool().parallel_for(begin, end, threads, body);
}

}  // namespace powerlens::util
