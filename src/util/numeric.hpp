// Locale-independent numeric parsing and formatting.
//
// std::strtod / std::to_string / printf-family formatting all read the
// process C locale (LC_NUMERIC): under a comma-decimal locale, "0.1" stops
// parsing at the '.' and 0.1 formats as "0,1". Every grammar and wire
// format in this repo (fault specs, JSON, serialized models) is defined in
// the classic locale, so parsing and formatting route through
// std::from_chars / std::to_chars, which are locale-independent by
// specification — the same treatment PR 8 gave the C++-stream serializers
// via imbue(std::locale::classic()).
#pragma once

#include <charconv>
#include <string>
#include <string_view>
#include <system_error>

namespace powerlens::util {

// Parses `text` as a double in the classic locale ("0.5", "1e-3", "inf",
// "nan"; no leading/trailing junk, no leading whitespace). Returns false —
// leaving `out` untouched — when the text is not a complete number.
inline bool parse_double(std::string_view text, double& out) noexcept {
  double v = 0.0;
  const char* const first = text.data();
  const char* const last = text.data() + text.size();
  const std::from_chars_result r = std::from_chars(first, last, v);
  if (r.ec != std::errc{} || r.ptr != last) return false;
  out = v;
  return true;
}

// Shortest round-trip decimal form of `v` in the classic locale.
inline std::string format_double(double v) {
  char buf[64];
  const std::to_chars_result r = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, r.ptr);
}

}  // namespace powerlens::util
