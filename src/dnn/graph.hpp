// DNN computation graph.
//
// Layers are stored in execution (topological) order; the clustering stage of
// Algorithm 1 treats this order as the operator axis (the |i - j| spacing
// regularization). Edges record producers so the global feature extractor can
// count residual joins and branch points (section 2.1.2, macro structural
// features).
#pragma once

#include "dnn/layer.hpp"

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace powerlens::dnn {

using NodeId = std::size_t;

class Graph {
 public:
  Graph() = default;
  Graph(std::string name, std::vector<Layer> layers,
        std::vector<std::vector<NodeId>> producers);

  const std::string& name() const noexcept { return name_; }
  std::size_t size() const noexcept { return layers_.size(); }
  bool empty() const noexcept { return layers_.empty(); }

  const Layer& layer(NodeId id) const { return layers_.at(id); }
  std::span<const Layer> layers() const noexcept { return layers_; }

  // Producer node ids feeding layer `id`, in argument order.
  std::span<const NodeId> producers(NodeId id) const {
    return producers_.at(id);
  }
  // Consumer node ids reading layer `id`'s output.
  std::span<const NodeId> consumers(NodeId id) const {
    return consumers_.at(id);
  }

  // --- Aggregates used by the global feature extractor and tests ---

  std::int64_t total_flops() const noexcept;
  std::int64_t total_params() const noexcept;
  std::int64_t total_mem_bytes() const noexcept;

  // Number of kAdd joins (residual connections).
  std::size_t residual_count() const noexcept;
  // Number of kConcat joins (branching merge points).
  std::size_t concat_count() const noexcept;
  // Number of nodes whose output feeds more than one consumer.
  std::size_t branch_count() const noexcept;
  // Longest producer->consumer path length (network depth).
  std::size_t depth() const;
  // Count of layers of a given type.
  std::size_t count_of(OpType t) const noexcept;

  // The batch size of the graph's input layer (0 if the graph is empty).
  std::int64_t batch_size() const noexcept;

  // Validates the topological invariant (every producer id < consumer id),
  // shape consistency along edges, and that exactly the first layer is
  // kInput. Throws std::invalid_argument describing the first violation.
  void validate() const;

  // Field-exact equality (name, every layer, every edge); consumers are
  // derived from producers, so comparing them too costs nothing extra and
  // keeps this defaultable. The interchange round-trip tests assert
  // load(save(g)) == g through this.
  bool operator==(const Graph&) const = default;

 private:
  std::string name_;
  std::vector<Layer> layers_;
  std::vector<std::vector<NodeId>> producers_;
  std::vector<std::vector<NodeId>> consumers_;
};

}  // namespace powerlens::dnn
