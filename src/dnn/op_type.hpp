// Operator taxonomy for the DNN intermediate representation.
//
// The set covers every operator appearing in the 12 torchvision models the
// paper evaluates (Table 1) plus what the random-network generator of the
// dataset phase emits. Traits attached here (arithmetic intensity class,
// one-hot index) feed the depthwise feature extractor (paper section 2.1.2).
#pragma once

#include <cstdint>
#include <string_view>

namespace powerlens::dnn {

enum class OpType : std::uint8_t {
  kInput,
  kConv2d,           // includes grouped / depthwise via ConvAttrs::groups
  kLinear,
  kBatchNorm,
  kLayerNorm,
  kLocalResponseNorm,
  kReLU,
  kGELU,
  kHardswish,
  kSigmoid,
  kSoftmax,
  kMaxPool2d,
  kAvgPool2d,
  kAdaptiveAvgPool2d,
  kAdd,              // residual connection join
  kConcat,           // branch join (GoogLeNet, DenseNet)
  kMul,              // channel-wise scaling (squeeze-excitation)
  kMultiHeadAttention,
  kPatchEmbed,       // ViT tokenizer (strided conv + flatten)
  kFlatten,
  kDropout,
  kCount_,           // sentinel, keep last
};

inline constexpr std::size_t kNumOpTypes =
    static_cast<std::size_t>(OpType::kCount_);

// Stable human-readable name, e.g. for power-view dumps and tests.
constexpr std::string_view op_name(OpType t) noexcept {
  switch (t) {
    case OpType::kInput: return "input";
    case OpType::kConv2d: return "conv2d";
    case OpType::kLinear: return "linear";
    case OpType::kBatchNorm: return "batch_norm";
    case OpType::kLayerNorm: return "layer_norm";
    case OpType::kLocalResponseNorm: return "lrn";
    case OpType::kReLU: return "relu";
    case OpType::kGELU: return "gelu";
    case OpType::kHardswish: return "hardswish";
    case OpType::kSigmoid: return "sigmoid";
    case OpType::kSoftmax: return "softmax";
    case OpType::kMaxPool2d: return "max_pool2d";
    case OpType::kAvgPool2d: return "avg_pool2d";
    case OpType::kAdaptiveAvgPool2d: return "adaptive_avg_pool2d";
    case OpType::kAdd: return "add";
    case OpType::kConcat: return "concat";
    case OpType::kMul: return "mul";
    case OpType::kMultiHeadAttention: return "multi_head_attention";
    case OpType::kPatchEmbed: return "patch_embed";
    case OpType::kFlatten: return "flatten";
    case OpType::kDropout: return "dropout";
    case OpType::kCount_: break;
  }
  return "unknown";
}

// True for operators dominated by MAC arithmetic (the "significant impact on
// power consumption" class of section 2.1.2 for which deep features are
// additionally extracted).
constexpr bool is_compute_op(OpType t) noexcept {
  switch (t) {
    case OpType::kConv2d:
    case OpType::kLinear:
    case OpType::kMultiHeadAttention:
    case OpType::kPatchEmbed:
      return true;
    default:
      return false;
  }
}

// True for data-movement / elementwise operators whose runtime is bounded by
// memory bandwidth rather than the GPU clock.
constexpr bool is_memory_op(OpType t) noexcept {
  switch (t) {
    case OpType::kBatchNorm:
    case OpType::kLayerNorm:
    case OpType::kLocalResponseNorm:
    case OpType::kReLU:
    case OpType::kGELU:
    case OpType::kHardswish:
    case OpType::kSigmoid:
    case OpType::kSoftmax:
    case OpType::kMaxPool2d:
    case OpType::kAvgPool2d:
    case OpType::kAdaptiveAvgPool2d:
    case OpType::kAdd:
    case OpType::kConcat:
    case OpType::kMul:
    case OpType::kFlatten:
    case OpType::kDropout:
      return true;
    default:
      return false;
  }
}

// True for structural joins that merge multiple producer tensors.
constexpr bool is_join_op(OpType t) noexcept {
  return t == OpType::kAdd || t == OpType::kConcat || t == OpType::kMul;
}

}  // namespace powerlens::dnn
