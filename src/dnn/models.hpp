// Model zoo: layer-accurate IR builders for the 12 torchvision networks the
// paper evaluates (Table 1). Shapes, channel widths, depths, and grouping
// follow the torchvision reference implementations, so per-layer FLOPs /
// parameter / memory-traffic attributes match the real workloads the Jetson
// boards executed.
#pragma once

#include "dnn/graph.hpp"

#include <cstdint>
#include <functional>
#include <span>
#include <string_view>

namespace powerlens::dnn {

// All builders take the inference batch size; inputs are (batch, 3, 224, 224)
// ImageNet-sized images.
Graph make_alexnet(std::int64_t batch);
Graph make_googlenet(std::int64_t batch);
Graph make_vgg19(std::int64_t batch);
Graph make_mobilenet_v3_large(std::int64_t batch);
Graph make_densenet201(std::int64_t batch);
Graph make_resnext101_32x8d(std::int64_t batch);
Graph make_resnet34(std::int64_t batch);
Graph make_resnet152(std::int64_t batch);
Graph make_regnet_x_32gf(std::int64_t batch);
Graph make_regnet_y_128gf(std::int64_t batch);
Graph make_vit_base_16(std::int64_t batch);
Graph make_vit_base_32(std::int64_t batch);

struct ModelSpec {
  std::string_view name;  // the name used in the paper's tables
  Graph (*build)(std::int64_t batch);
};

// The 12 models in Table 1 order.
std::span<const ModelSpec> model_zoo();

// Builds a zoo model by its Table 1 name. Throws std::invalid_argument for
// unknown names.
Graph make_model(std::string_view name, std::int64_t batch);

}  // namespace powerlens::dnn
