// A single operator instance in the DNN IR.
//
// Every attribute the depthwise feature extractor reads (section 2.1.2) lives
// here: computational load (flops), parameter count, memory-access volume,
// operator type, channel counts, feature-map dimensions, and the per-type
// deep attributes (conv kernel/stride/filters; attention heads/dims).
#pragma once

#include "dnn/op_type.hpp"
#include "dnn/shape.hpp"

#include <cstdint>
#include <string>

namespace powerlens::dnn {

// Deep attributes for convolution-family operators (kConv2d, kPatchEmbed,
// and pooling windows reuse kernel/stride).
struct ConvAttrs {
  std::int64_t kernel_h = 0;
  std::int64_t kernel_w = 0;
  std::int64_t stride = 1;
  std::int64_t padding = 0;
  std::int64_t groups = 1;
  std::int64_t filters = 0;  // output channels

  constexpr bool depthwise(std::int64_t in_channels) const noexcept {
    return groups == in_channels && groups == filters;
  }

  constexpr bool operator==(const ConvAttrs&) const noexcept = default;
};

// Deep attributes for transformer attention (section 2.1.2: heads, matrix
// dimensions, and the governing FC / normalization parameters).
struct AttnAttrs {
  std::int64_t heads = 0;
  std::int64_t embed_dim = 0;
  std::int64_t head_dim = 0;
  std::int64_t seq_len = 0;

  constexpr bool operator==(const AttnAttrs&) const noexcept = default;
};

struct Layer {
  OpType type = OpType::kInput;
  std::string name;

  TensorShape input;   // primary input shape (first producer for joins)
  TensorShape output;

  // Cost attributes, computed at graph-construction time.
  std::int64_t flops = 0;      // floating-point operations (2 * MACs)
  std::int64_t params = 0;     // learnable parameter count
  std::int64_t mem_bytes = 0;  // DRAM traffic: activations in+out and weights

  ConvAttrs conv;  // meaningful when type is conv-family
  AttnAttrs attn;  // meaningful when type == kMultiHeadAttention

  // Arithmetic intensity in FLOPs per byte of DRAM traffic. This single
  // number drives the roofline latency model and, through it, which
  // frequency is energy-optimal for the layer.
  double arithmetic_intensity() const noexcept {
    return mem_bytes > 0 ? static_cast<double>(flops) /
                               static_cast<double>(mem_bytes)
                         : 0.0;
  }

  // Field-exact equality — the binary interchange round-trip contract.
  bool operator==(const Layer&) const noexcept = default;
};

}  // namespace powerlens::dnn
