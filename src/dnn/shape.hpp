// Tensor shapes for the DNN IR.
//
// Convolutional tensors are NCHW. Transformer token tensors (B, tokens, dim)
// are stored as N=B, C=dim, H=tokens, W=1 so a single shape type serves both
// model families.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace powerlens::dnn {

struct TensorShape {
  std::int64_t n = 1;  // batch
  std::int64_t c = 0;  // channels / embedding dim
  std::int64_t h = 0;  // height / token count
  std::int64_t w = 0;  // width / 1 for token tensors

  constexpr std::int64_t elements() const noexcept { return n * c * h * w; }
  constexpr std::int64_t elements_per_sample() const noexcept {
    return c * h * w;
  }

  constexpr bool valid() const noexcept {
    return n > 0 && c > 0 && h > 0 && w > 0;
  }

  constexpr bool operator==(const TensorShape&) const noexcept = default;

  std::string to_string() const {
    return "(" + std::to_string(n) + ", " + std::to_string(c) + ", " +
           std::to_string(h) + ", " + std::to_string(w) + ")";
  }
};

// Output spatial size of a conv/pool window: floor((in + 2p - k) / s) + 1.
// Throws std::invalid_argument if the window does not fit.
constexpr std::int64_t conv_out_dim(std::int64_t in, std::int64_t kernel,
                                    std::int64_t stride, std::int64_t pad) {
  const std::int64_t numer = in + 2 * pad - kernel;
  if (numer < 0 || stride <= 0) {
    throw std::invalid_argument("conv_out_dim: window does not fit input");
  }
  return numer / stride + 1;
}

}  // namespace powerlens::dnn
