// ResNet-34, ResNet-152, ResNeXt-101 (32x8d), and DenseNet-201 builders.
#include "dnn/builder.hpp"
#include "dnn/models.hpp"

#include <array>
#include <vector>

namespace powerlens::dnn {

namespace {

constexpr TensorShape imagenet_input(std::int64_t batch) {
  return {batch, 3, 224, 224};
}

NodeId resnet_stem(GraphBuilder& b) {
  NodeId x = b.input();
  x = b.conv2d(x, 64, 7, 2, 3, 1, "stem_conv");
  x = b.batch_norm(x);
  x = b.relu(x);
  return b.max_pool2d(x, 3, 2, 1);
}

// BasicBlock (ResNet-18/34): two 3x3 convolutions.
NodeId basic_block(GraphBuilder& b, NodeId x, std::int64_t planes,
                   std::int64_t stride) {
  NodeId identity = x;
  NodeId y = b.conv2d(x, planes, 3, stride, 1);
  y = b.batch_norm(y);
  y = b.relu(y);
  y = b.conv2d(y, planes, 3, 1, 1);
  y = b.batch_norm(y);
  if (stride != 1 || b.shape(x).c != planes) {
    identity = b.conv2d(x, planes, 1, stride, 0);
    identity = b.batch_norm(identity);
  }
  y = b.add(y, identity);
  return b.relu(y);
}

// Bottleneck (ResNet-50+/ResNeXt): 1x1 reduce, 3x3 (optionally grouped),
// 1x1 expand (x4).
NodeId bottleneck_block(GraphBuilder& b, NodeId x, std::int64_t planes,
                        std::int64_t stride, std::int64_t groups,
                        std::int64_t base_width) {
  constexpr std::int64_t kExpansion = 4;
  const std::int64_t width = planes * base_width / 64 * groups;
  const std::int64_t out_channels = planes * kExpansion;

  NodeId identity = x;
  NodeId y = b.conv2d(x, width, 1, 1, 0);
  y = b.batch_norm(y);
  y = b.relu(y);
  y = b.conv2d(y, width, 3, stride, 1, groups);
  y = b.batch_norm(y);
  y = b.relu(y);
  y = b.conv2d(y, out_channels, 1, 1, 0);
  y = b.batch_norm(y);
  if (stride != 1 || b.shape(x).c != out_channels) {
    identity = b.conv2d(x, out_channels, 1, stride, 0);
    identity = b.batch_norm(identity);
  }
  y = b.add(y, identity);
  return b.relu(y);
}

Graph make_resnet(std::string name, std::int64_t batch, bool bottleneck,
                  std::array<int, 4> depths, std::int64_t groups = 1,
                  std::int64_t base_width = 64) {
  GraphBuilder b(std::move(name), imagenet_input(batch));
  NodeId x = resnet_stem(b);
  constexpr std::array<std::int64_t, 4> planes{64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    for (int blk = 0; blk < depths[static_cast<std::size_t>(stage)]; ++blk) {
      const std::int64_t stride = (stage > 0 && blk == 0) ? 2 : 1;
      x = bottleneck
              ? bottleneck_block(b, x, planes[static_cast<std::size_t>(stage)],
                                 stride, groups, base_width)
              : basic_block(b, x, planes[static_cast<std::size_t>(stage)],
                            stride);
    }
  }
  x = b.adaptive_avg_pool2d(x, 1);
  x = b.flatten(x);
  x = b.linear(x, 1000);
  return b.build();
}

}  // namespace

Graph make_resnet34(std::int64_t batch) {
  return make_resnet("resnet34", batch, /*bottleneck=*/false, {3, 4, 6, 3});
}

Graph make_resnet152(std::int64_t batch) {
  return make_resnet("resnet152", batch, /*bottleneck=*/true, {3, 8, 36, 3});
}

Graph make_resnext101_32x8d(std::int64_t batch) {
  return make_resnet("resnext101", batch, /*bottleneck=*/true, {3, 4, 23, 3},
                     /*groups=*/32, /*base_width=*/8);
}

Graph make_densenet201(std::int64_t batch) {
  constexpr std::int64_t kGrowth = 32;
  constexpr std::int64_t kBnSize = 4;  // bottleneck width multiplier
  constexpr std::array<int, 4> kBlockSizes{6, 12, 48, 32};

  GraphBuilder b("densenet201", imagenet_input(batch));
  NodeId x = b.input();
  x = b.conv2d(x, 64, 7, 2, 3);
  x = b.batch_norm(x);
  x = b.relu(x);
  x = b.max_pool2d(x, 3, 2, 1);

  std::int64_t channels = 64;
  for (std::size_t stage = 0; stage < kBlockSizes.size(); ++stage) {
    // Dense block: every layer sees the concat of all previous outputs.
    for (int l = 0; l < kBlockSizes[stage]; ++l) {
      NodeId y = b.batch_norm(x);
      y = b.relu(y);
      y = b.conv2d(y, kBnSize * kGrowth, 1, 1, 0);
      y = b.batch_norm(y);
      y = b.relu(y);
      y = b.conv2d(y, kGrowth, 3, 1, 1);
      x = b.concat({x, y});
      channels += kGrowth;
    }
    if (stage + 1 < kBlockSizes.size()) {
      // Transition: halve channels, halve resolution.
      x = b.batch_norm(x);
      x = b.relu(x);
      channels /= 2;
      x = b.conv2d(x, channels, 1, 1, 0);
      x = b.avg_pool2d(x, 2, 2);
    }
  }
  x = b.batch_norm(x);
  x = b.relu(x);
  x = b.adaptive_avg_pool2d(x, 1);
  x = b.flatten(x);
  x = b.linear(x, 1000);
  return b.build();
}

}  // namespace powerlens::dnn
