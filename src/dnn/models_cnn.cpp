// AlexNet, VGG-19, GoogLeNet, and MobileNetV3-Large builders.
#include "dnn/builder.hpp"
#include "dnn/models.hpp"

#include <array>
#include <string>

namespace powerlens::dnn {

namespace {

constexpr TensorShape imagenet_input(std::int64_t batch) {
  return {batch, 3, 224, 224};
}

// torchvision BasicConv2d: conv + batch-norm + relu.
NodeId conv_bn_relu(GraphBuilder& b, NodeId x, std::int64_t out,
                    std::int64_t k, std::int64_t s, std::int64_t p,
                    std::int64_t groups = 1) {
  x = b.conv2d(x, out, k, s, p, groups);
  x = b.batch_norm(x);
  return b.relu(x);
}

}  // namespace

Graph make_alexnet(std::int64_t batch) {
  GraphBuilder b("alexnet", imagenet_input(batch));
  NodeId x = b.input();
  x = b.conv2d(x, 64, 11, 4, 2);
  x = b.relu(x);
  x = b.max_pool2d(x, 3, 2);
  x = b.conv2d(x, 192, 5, 1, 2);
  x = b.relu(x);
  x = b.max_pool2d(x, 3, 2);
  x = b.conv2d(x, 384, 3, 1, 1);
  x = b.relu(x);
  x = b.conv2d(x, 256, 3, 1, 1);
  x = b.relu(x);
  x = b.conv2d(x, 256, 3, 1, 1);
  x = b.relu(x);
  x = b.max_pool2d(x, 3, 2);
  x = b.adaptive_avg_pool2d(x, 6);
  x = b.flatten(x);
  x = b.dropout(x);
  x = b.linear(x, 4096);
  x = b.relu(x);
  x = b.dropout(x);
  x = b.linear(x, 4096);
  x = b.relu(x);
  x = b.linear(x, 1000);
  return b.build();
}

Graph make_vgg19(std::int64_t batch) {
  GraphBuilder b("vgg19", imagenet_input(batch));
  NodeId x = b.input();
  // Configuration "E": conv counts 2-2-4-4-4, widths 64-128-256-512-512.
  constexpr std::array<std::pair<int, int>, 5> stages{{
      {2, 64}, {2, 128}, {4, 256}, {4, 512}, {4, 512}}};
  for (const auto& [convs, width] : stages) {
    for (int i = 0; i < convs; ++i) {
      x = b.conv2d(x, width, 3, 1, 1);
      x = b.relu(x);
    }
    x = b.max_pool2d(x, 2, 2);
  }
  x = b.adaptive_avg_pool2d(x, 7);
  x = b.flatten(x);
  x = b.linear(x, 4096);
  x = b.relu(x);
  x = b.dropout(x);
  x = b.linear(x, 4096);
  x = b.relu(x);
  x = b.dropout(x);
  x = b.linear(x, 1000);
  return b.build();
}

namespace {

struct InceptionCfg {
  std::int64_t c1x1, c3x3_reduce, c3x3, c5x5_reduce, c5x5, pool_proj;
};

NodeId inception(GraphBuilder& b, NodeId in, const InceptionCfg& cfg) {
  const NodeId br1 = conv_bn_relu(b, in, cfg.c1x1, 1, 1, 0);

  NodeId br2 = conv_bn_relu(b, in, cfg.c3x3_reduce, 1, 1, 0);
  br2 = conv_bn_relu(b, br2, cfg.c3x3, 3, 1, 1);

  NodeId br3 = conv_bn_relu(b, in, cfg.c5x5_reduce, 1, 1, 0);
  // torchvision's GoogLeNet uses a 3x3 kernel in the "5x5" branch.
  br3 = conv_bn_relu(b, br3, cfg.c5x5, 3, 1, 1);

  NodeId br4 = b.max_pool2d(in, 3, 1, 1);
  br4 = conv_bn_relu(b, br4, cfg.pool_proj, 1, 1, 0);

  return b.concat({br1, br2, br3, br4});
}

}  // namespace

Graph make_googlenet(std::int64_t batch) {
  GraphBuilder b("googlenet", imagenet_input(batch));
  NodeId x = b.input();
  x = conv_bn_relu(b, x, 64, 7, 2, 3);
  x = b.max_pool2d(x, 3, 2, 1);
  x = conv_bn_relu(b, x, 64, 1, 1, 0);
  x = conv_bn_relu(b, x, 192, 3, 1, 1);
  x = b.max_pool2d(x, 3, 2, 1);

  x = inception(b, x, {64, 96, 128, 16, 32, 32});     // 3a -> 256
  x = inception(b, x, {128, 128, 192, 32, 96, 64});   // 3b -> 480
  x = b.max_pool2d(x, 3, 2, 1);
  x = inception(b, x, {192, 96, 208, 16, 48, 64});    // 4a -> 512
  x = inception(b, x, {160, 112, 224, 24, 64, 64});   // 4b
  x = inception(b, x, {128, 128, 256, 24, 64, 64});   // 4c
  x = inception(b, x, {112, 144, 288, 32, 64, 64});   // 4d -> 528
  x = inception(b, x, {256, 160, 320, 32, 128, 128}); // 4e -> 832
  x = b.max_pool2d(x, 2, 2);
  x = inception(b, x, {256, 160, 320, 32, 128, 128}); // 5a
  x = inception(b, x, {384, 192, 384, 48, 128, 128}); // 5b -> 1024

  x = b.adaptive_avg_pool2d(x, 1);
  x = b.flatten(x);
  x = b.dropout(x);
  x = b.linear(x, 1000);
  return b.build();
}

namespace {

enum class Act { kReLU, kHardswish };

NodeId activate(GraphBuilder& b, NodeId x, Act act) {
  return act == Act::kReLU ? b.relu(x) : b.hardswish(x);
}

// Squeeze-excitation: global pool -> fc reduce -> relu -> fc expand ->
// hardsigmoid (approximated by sigmoid here) -> channel-wise scale.
NodeId squeeze_excite(GraphBuilder& b, NodeId x, std::int64_t channels,
                      std::int64_t squeeze) {
  NodeId g = b.adaptive_avg_pool2d(x, 1);
  g = b.conv2d(g, squeeze, 1, 1, 0);
  g = b.relu(g);
  g = b.conv2d(g, channels, 1, 1, 0);
  g = b.sigmoid(g);
  return b.mul(x, g);
}

struct MbV3Block {
  std::int64_t kernel, expanded, out;
  bool se;
  Act act;
  std::int64_t stride;
};

}  // namespace

Graph make_mobilenet_v3_large(std::int64_t batch) {
  GraphBuilder b("mobilenet_v3", imagenet_input(batch));
  NodeId x = b.input();
  x = b.conv2d(x, 16, 3, 2, 1);
  x = b.batch_norm(x);
  x = b.hardswish(x);

  constexpr std::array<MbV3Block, 15> blocks{{
      {3, 16, 16, false, Act::kReLU, 1},
      {3, 64, 24, false, Act::kReLU, 2},
      {3, 72, 24, false, Act::kReLU, 1},
      {5, 72, 40, true, Act::kReLU, 2},
      {5, 120, 40, true, Act::kReLU, 1},
      {5, 120, 40, true, Act::kReLU, 1},
      {3, 240, 80, false, Act::kHardswish, 2},
      {3, 200, 80, false, Act::kHardswish, 1},
      {3, 184, 80, false, Act::kHardswish, 1},
      {3, 184, 80, false, Act::kHardswish, 1},
      {3, 480, 112, true, Act::kHardswish, 1},
      {3, 672, 112, true, Act::kHardswish, 1},
      {5, 672, 160, true, Act::kHardswish, 2},
      {5, 960, 160, true, Act::kHardswish, 1},
      {5, 960, 160, true, Act::kHardswish, 1},
  }};

  for (const MbV3Block& blk : blocks) {
    const NodeId block_in = x;
    const std::int64_t in_channels = b.shape(x).c;
    NodeId y = x;
    if (blk.expanded != in_channels) {
      y = b.conv2d(y, blk.expanded, 1, 1, 0);
      y = b.batch_norm(y);
      y = activate(b, y, blk.act);
    }
    y = b.conv2d(y, blk.expanded, blk.kernel, blk.stride, blk.kernel / 2,
                 /*groups=*/blk.expanded);
    y = b.batch_norm(y);
    y = activate(b, y, blk.act);
    if (blk.se) {
      y = squeeze_excite(b, y, blk.expanded, blk.expanded / 4);
    }
    y = b.conv2d(y, blk.out, 1, 1, 0);
    y = b.batch_norm(y);
    if (blk.stride == 1 && blk.out == in_channels) {
      y = b.add(y, block_in);
    }
    x = y;
  }

  x = b.conv2d(x, 960, 1, 1, 0);
  x = b.batch_norm(x);
  x = b.hardswish(x);
  x = b.adaptive_avg_pool2d(x, 1);
  x = b.flatten(x);
  x = b.linear(x, 1280);
  x = b.hardswish(x);
  x = b.dropout(x);
  x = b.linear(x, 1000);
  return b.build();
}

}  // namespace powerlens::dnn
