// GraphBuilder: constructs Graphs with shape inference and per-layer cost
// computation (FLOPs, parameters, DRAM traffic).
//
// Builder methods take the producer NodeId(s) explicitly and return the new
// node's id, which makes branching topologies (GoogLeNet inception modules,
// DenseNet concats, residual adds, squeeze-excitation) read like the model
// definitions they mirror.
#pragma once

#include "dnn/graph.hpp"

#include <string>
#include <vector>

namespace powerlens::dnn {

// Bytes per activation/weight element. The evaluated PyTorch models run fp32.
inline constexpr std::int64_t kBytesPerElement = 4;

class GraphBuilder {
 public:
  // Starts a graph with a single kInput node of the given shape.
  // Throws std::invalid_argument if the shape is not valid.
  GraphBuilder(std::string graph_name, TensorShape input_shape);

  NodeId input() const noexcept { return 0; }
  const TensorShape& shape(NodeId id) const { return layers_.at(id).output; }

  // --- convolution family -------------------------------------------------
  NodeId conv2d(NodeId in, std::int64_t out_channels, std::int64_t kernel,
                std::int64_t stride, std::int64_t padding,
                std::int64_t groups = 1, std::string name = "");
  // Non-square kernels (GoogLeNet reduction paths use none, but the random
  // generator exercises them).
  NodeId conv2d_rect(NodeId in, std::int64_t out_channels, std::int64_t kh,
                     std::int64_t kw, std::int64_t stride, std::int64_t padding,
                     std::int64_t groups = 1, std::string name = "");

  // --- dense ---------------------------------------------------------------
  // Applies a per-position linear map over the channel axis: (N,C,H,W) ->
  // (N,F,H,W). With H=W=1 this is a classic fully connected layer; with
  // H=tokens it is a transformer token-wise projection.
  NodeId linear(NodeId in, std::int64_t out_features, std::string name = "");

  // --- normalization ---------------------------------------------------------
  NodeId batch_norm(NodeId in, std::string name = "");
  NodeId layer_norm(NodeId in, std::string name = "");
  NodeId lrn(NodeId in, std::string name = "");

  // --- activations -----------------------------------------------------------
  NodeId relu(NodeId in, std::string name = "");
  NodeId gelu(NodeId in, std::string name = "");
  NodeId hardswish(NodeId in, std::string name = "");
  NodeId sigmoid(NodeId in, std::string name = "");
  NodeId softmax(NodeId in, std::string name = "");

  // --- pooling ---------------------------------------------------------------
  NodeId max_pool2d(NodeId in, std::int64_t kernel, std::int64_t stride,
                    std::int64_t padding = 0, std::string name = "");
  NodeId avg_pool2d(NodeId in, std::int64_t kernel, std::int64_t stride,
                    std::int64_t padding = 0, std::string name = "");
  // Pools to out_hw x out_hw (1 x 1 for global average pooling).
  NodeId adaptive_avg_pool2d(NodeId in, std::int64_t out_hw,
                             std::string name = "");

  // --- joins -----------------------------------------------------------------
  // Elementwise sum; shapes must match. Residual connections.
  NodeId add(NodeId a, NodeId b, std::string name = "");
  // Channel-axis concatenation; N/H/W must match across inputs.
  NodeId concat(std::vector<NodeId> ins, std::string name = "");
  // Elementwise / broadcast channel-wise product (squeeze-excitation gate).
  // `gate` must have matching channels with H=W=1, or an identical shape.
  NodeId mul(NodeId a, NodeId gate, std::string name = "");

  // --- transformer -------------------------------------------------------------
  // Tokenizes (N,3,H,W) into (N, embed_dim, tokens+1, 1) including the class
  // token, via a patch_size-strided convolution.
  NodeId patch_embed(NodeId in, std::int64_t patch_size,
                     std::int64_t embed_dim, std::string name = "");
  // Full multi-head self-attention over token tensor (N, D, S, 1):
  // QKV + output projections and the S x S attention map.
  NodeId attention(NodeId in, std::int64_t heads, std::string name = "");

  // --- misc -------------------------------------------------------------------
  NodeId flatten(NodeId in, std::string name = "");
  NodeId dropout(NodeId in, std::string name = "");

  // Finalizes and validates the graph. The builder is left empty.
  Graph build();

  std::size_t size() const noexcept { return layers_.size(); }

 private:
  NodeId append(Layer layer, std::vector<NodeId> producers);
  NodeId elementwise(NodeId in, OpType type, double flops_per_element,
                     std::string name);
  const Layer& at(NodeId id) const;
  std::string auto_name(std::string_view base);

  std::string graph_name_;
  std::vector<Layer> layers_;
  std::vector<std::vector<NodeId>> producers_;
  std::size_t name_counter_ = 0;
};

}  // namespace powerlens::dnn
