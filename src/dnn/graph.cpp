#include "dnn/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace powerlens::dnn {

Graph::Graph(std::string name, std::vector<Layer> layers,
             std::vector<std::vector<NodeId>> producers)
    : name_(std::move(name)),
      layers_(std::move(layers)),
      producers_(std::move(producers)) {
  if (layers_.size() != producers_.size()) {
    throw std::invalid_argument("Graph: layers/producers size mismatch");
  }
  consumers_.resize(layers_.size());
  for (NodeId id = 0; id < layers_.size(); ++id) {
    for (NodeId p : producers_[id]) {
      if (p >= layers_.size()) {
        throw std::invalid_argument("Graph: producer id out of range");
      }
      consumers_[p].push_back(id);
    }
  }
}

std::int64_t Graph::total_flops() const noexcept {
  std::int64_t s = 0;
  for (const Layer& l : layers_) s += l.flops;
  return s;
}

std::int64_t Graph::total_params() const noexcept {
  std::int64_t s = 0;
  for (const Layer& l : layers_) s += l.params;
  return s;
}

std::int64_t Graph::total_mem_bytes() const noexcept {
  std::int64_t s = 0;
  for (const Layer& l : layers_) s += l.mem_bytes;
  return s;
}

std::size_t Graph::residual_count() const noexcept {
  return count_of(OpType::kAdd);
}

std::size_t Graph::concat_count() const noexcept {
  return count_of(OpType::kConcat);
}

std::size_t Graph::branch_count() const noexcept {
  std::size_t n = 0;
  for (const auto& cons : consumers_) {
    if (cons.size() > 1) ++n;
  }
  return n;
}

std::size_t Graph::depth() const {
  // Layers are topologically ordered, so one forward pass suffices.
  std::vector<std::size_t> dist(layers_.size(), 0);
  std::size_t best = 0;
  for (NodeId id = 0; id < layers_.size(); ++id) {
    for (NodeId p : producers_[id]) {
      dist[id] = std::max(dist[id], dist[p] + 1);
    }
    best = std::max(best, dist[id]);
  }
  return best;
}

std::size_t Graph::count_of(OpType t) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(layers_.begin(), layers_.end(),
                    [t](const Layer& l) { return l.type == t; }));
}

std::int64_t Graph::batch_size() const noexcept {
  return layers_.empty() ? 0 : layers_.front().output.n;
}

void Graph::validate() const {
  if (layers_.empty()) throw std::invalid_argument("Graph: empty");
  if (layers_.front().type != OpType::kInput) {
    throw std::invalid_argument("Graph: first layer must be kInput");
  }
  for (NodeId id = 0; id < layers_.size(); ++id) {
    const Layer& l = layers_[id];
    if (id > 0 && l.type == OpType::kInput) {
      throw std::invalid_argument("Graph: kInput layer not at position 0 in '" +
                                  name_ + "'");
    }
    if (id > 0 && producers_[id].empty()) {
      throw std::invalid_argument("Graph: non-input layer '" + l.name +
                                  "' has no producers");
    }
    for (NodeId p : producers_[id]) {
      if (p >= id) {
        throw std::invalid_argument(
            "Graph: producer does not precede consumer at layer '" + l.name +
            "'");
      }
    }
    if (!l.output.valid()) {
      throw std::invalid_argument("Graph: invalid output shape at layer '" +
                                  l.name + "'");
    }
    if (!producers_[id].empty()) {
      const Layer& first_prod = layers_[producers_[id].front()];
      if (first_prod.output != l.input) {
        throw std::invalid_argument(
            "Graph: input shape of layer '" + l.name +
            "' does not match its first producer's output");
      }
    }
    if (l.flops < 0 || l.params < 0 || l.mem_bytes < 0) {
      throw std::invalid_argument("Graph: negative cost at layer '" + l.name +
                                  "'");
    }
  }
}

}  // namespace powerlens::dnn
