#include "dnn/builder.hpp"

#include <stdexcept>
#include <utility>

namespace powerlens::dnn {

namespace {

std::int64_t activation_bytes(const TensorShape& s) {
  return s.elements() * kBytesPerElement;
}

}  // namespace

GraphBuilder::GraphBuilder(std::string graph_name, TensorShape input_shape)
    : graph_name_(std::move(graph_name)) {
  if (!input_shape.valid()) {
    throw std::invalid_argument("GraphBuilder: invalid input shape");
  }
  Layer in;
  in.type = OpType::kInput;
  in.name = "input";
  in.input = input_shape;
  in.output = input_shape;
  layers_.push_back(std::move(in));
  producers_.emplace_back();
}

const Layer& GraphBuilder::at(NodeId id) const {
  if (id >= layers_.size()) {
    throw std::out_of_range("GraphBuilder: node id out of range");
  }
  return layers_[id];
}

std::string GraphBuilder::auto_name(std::string_view base) {
  return std::string(base) + "_" + std::to_string(name_counter_++);
}

NodeId GraphBuilder::append(Layer layer, std::vector<NodeId> producers) {
  layers_.push_back(std::move(layer));
  producers_.push_back(std::move(producers));
  return layers_.size() - 1;
}

NodeId GraphBuilder::conv2d(NodeId in, std::int64_t out_channels,
                            std::int64_t kernel, std::int64_t stride,
                            std::int64_t padding, std::int64_t groups,
                            std::string name) {
  return conv2d_rect(in, out_channels, kernel, kernel, stride, padding, groups,
                     std::move(name));
}

NodeId GraphBuilder::conv2d_rect(NodeId in, std::int64_t out_channels,
                                 std::int64_t kh, std::int64_t kw,
                                 std::int64_t stride, std::int64_t padding,
                                 std::int64_t groups, std::string name) {
  const TensorShape is = at(in).output;
  if (out_channels <= 0 || groups <= 0 || is.c % groups != 0 ||
      out_channels % groups != 0) {
    throw std::invalid_argument("conv2d: bad channel/group configuration");
  }
  TensorShape os{is.n, out_channels, conv_out_dim(is.h, kh, stride, padding),
                 conv_out_dim(is.w, kw, stride, padding)};

  Layer l;
  l.type = OpType::kConv2d;
  l.name = name.empty() ? auto_name("conv") : std::move(name);
  l.input = is;
  l.output = os;
  l.conv = {kh, kw, stride, padding, groups, out_channels};

  const std::int64_t macs =
      os.elements() * (is.c / groups) * kh * kw;
  l.flops = 2 * macs;
  l.params = out_channels * (is.c / groups) * kh * kw + out_channels;
  l.mem_bytes = activation_bytes(is) + activation_bytes(os) +
                l.params * kBytesPerElement;
  return append(std::move(l), {in});
}

NodeId GraphBuilder::linear(NodeId in, std::int64_t out_features,
                            std::string name) {
  const TensorShape is = at(in).output;
  if (out_features <= 0) {
    throw std::invalid_argument("linear: out_features must be positive");
  }
  TensorShape os{is.n, out_features, is.h, is.w};

  Layer l;
  l.type = OpType::kLinear;
  l.name = name.empty() ? auto_name("linear") : std::move(name);
  l.input = is;
  l.output = os;
  const std::int64_t positions = is.n * is.h * is.w;
  l.flops = 2 * positions * is.c * out_features;
  l.params = is.c * out_features + out_features;
  l.mem_bytes = activation_bytes(is) + activation_bytes(os) +
                l.params * kBytesPerElement;
  return append(std::move(l), {in});
}

NodeId GraphBuilder::elementwise(NodeId in, OpType type,
                                 double flops_per_element, std::string name) {
  const TensorShape is = at(in).output;
  Layer l;
  l.type = type;
  l.name = name.empty() ? auto_name(op_name(type)) : std::move(name);
  l.input = is;
  l.output = is;
  l.flops = static_cast<std::int64_t>(
      flops_per_element * static_cast<double>(is.elements()));
  l.mem_bytes = 2 * activation_bytes(is);
  return append(std::move(l), {in});
}

NodeId GraphBuilder::batch_norm(NodeId in, std::string name) {
  const NodeId id = elementwise(in, OpType::kBatchNorm, 2.0, std::move(name));
  Layer& l = layers_[id];
  l.params = 2 * l.input.c;  // affine scale + shift
  l.mem_bytes += l.params * kBytesPerElement;
  return id;
}

NodeId GraphBuilder::layer_norm(NodeId in, std::string name) {
  const NodeId id = elementwise(in, OpType::kLayerNorm, 5.0, std::move(name));
  Layer& l = layers_[id];
  l.params = 2 * l.input.c;
  l.mem_bytes += l.params * kBytesPerElement;
  return id;
}

NodeId GraphBuilder::lrn(NodeId in, std::string name) {
  return elementwise(in, OpType::kLocalResponseNorm, 8.0, std::move(name));
}

NodeId GraphBuilder::relu(NodeId in, std::string name) {
  return elementwise(in, OpType::kReLU, 1.0, std::move(name));
}

NodeId GraphBuilder::gelu(NodeId in, std::string name) {
  return elementwise(in, OpType::kGELU, 8.0, std::move(name));
}

NodeId GraphBuilder::hardswish(NodeId in, std::string name) {
  return elementwise(in, OpType::kHardswish, 3.0, std::move(name));
}

NodeId GraphBuilder::sigmoid(NodeId in, std::string name) {
  return elementwise(in, OpType::kSigmoid, 4.0, std::move(name));
}

NodeId GraphBuilder::softmax(NodeId in, std::string name) {
  return elementwise(in, OpType::kSoftmax, 5.0, std::move(name));
}

NodeId GraphBuilder::max_pool2d(NodeId in, std::int64_t kernel,
                                std::int64_t stride, std::int64_t padding,
                                std::string name) {
  const TensorShape is = at(in).output;
  TensorShape os{is.n, is.c, conv_out_dim(is.h, kernel, stride, padding),
                 conv_out_dim(is.w, kernel, stride, padding)};
  Layer l;
  l.type = OpType::kMaxPool2d;
  l.name = name.empty() ? auto_name("maxpool") : std::move(name);
  l.input = is;
  l.output = os;
  l.conv = {kernel, kernel, stride, padding, 1, is.c};
  l.flops = os.elements() * kernel * kernel;
  l.mem_bytes = activation_bytes(is) + activation_bytes(os);
  return append(std::move(l), {in});
}

NodeId GraphBuilder::avg_pool2d(NodeId in, std::int64_t kernel,
                                std::int64_t stride, std::int64_t padding,
                                std::string name) {
  const TensorShape is = at(in).output;
  TensorShape os{is.n, is.c, conv_out_dim(is.h, kernel, stride, padding),
                 conv_out_dim(is.w, kernel, stride, padding)};
  Layer l;
  l.type = OpType::kAvgPool2d;
  l.name = name.empty() ? auto_name("avgpool") : std::move(name);
  l.input = is;
  l.output = os;
  l.conv = {kernel, kernel, stride, padding, 1, is.c};
  l.flops = os.elements() * kernel * kernel;
  l.mem_bytes = activation_bytes(is) + activation_bytes(os);
  return append(std::move(l), {in});
}

NodeId GraphBuilder::adaptive_avg_pool2d(NodeId in, std::int64_t out_hw,
                                         std::string name) {
  const TensorShape is = at(in).output;
  if (out_hw <= 0 || out_hw > is.h || out_hw > is.w) {
    throw std::invalid_argument("adaptive_avg_pool2d: bad output size");
  }
  TensorShape os{is.n, is.c, out_hw, out_hw};
  Layer l;
  l.type = OpType::kAdaptiveAvgPool2d;
  l.name = name.empty() ? auto_name("gap") : std::move(name);
  l.input = is;
  l.output = os;
  l.flops = is.elements();  // every input element is summed once
  l.mem_bytes = activation_bytes(is) + activation_bytes(os);
  return append(std::move(l), {in});
}

NodeId GraphBuilder::add(NodeId a, NodeId b, std::string name) {
  const TensorShape sa = at(a).output;
  const TensorShape sb = at(b).output;
  if (sa != sb) {
    throw std::invalid_argument("add: shape mismatch " + sa.to_string() +
                                " vs " + sb.to_string());
  }
  Layer l;
  l.type = OpType::kAdd;
  l.name = name.empty() ? auto_name("add") : std::move(name);
  l.input = sa;
  l.output = sa;
  l.flops = sa.elements();
  l.mem_bytes = 3 * activation_bytes(sa);
  return append(std::move(l), {a, b});
}

NodeId GraphBuilder::concat(std::vector<NodeId> ins, std::string name) {
  if (ins.size() < 2) {
    throw std::invalid_argument("concat: needs at least two inputs");
  }
  const TensorShape first = at(ins.front()).output;
  std::int64_t channels = 0;
  std::int64_t in_bytes = 0;
  for (NodeId id : ins) {
    const TensorShape s = at(id).output;
    if (s.n != first.n || s.h != first.h || s.w != first.w) {
      throw std::invalid_argument("concat: spatial/batch shape mismatch");
    }
    channels += s.c;
    in_bytes += activation_bytes(s);
  }
  TensorShape os{first.n, channels, first.h, first.w};
  Layer l;
  l.type = OpType::kConcat;
  l.name = name.empty() ? auto_name("concat") : std::move(name);
  l.input = first;
  l.output = os;
  l.flops = 0;  // pure data movement
  l.mem_bytes = in_bytes + activation_bytes(os);
  return append(std::move(l), std::move(ins));
}

NodeId GraphBuilder::mul(NodeId a, NodeId gate, std::string name) {
  const TensorShape sa = at(a).output;
  const TensorShape sg = at(gate).output;
  const bool broadcast = sg.n == sa.n && sg.c == sa.c && sg.h == 1 && sg.w == 1;
  if (!broadcast && sa != sg) {
    throw std::invalid_argument("mul: incompatible shapes");
  }
  Layer l;
  l.type = OpType::kMul;
  l.name = name.empty() ? auto_name("mul") : std::move(name);
  l.input = sa;
  l.output = sa;
  l.flops = sa.elements();
  l.mem_bytes = 2 * activation_bytes(sa) + activation_bytes(sg);
  return append(std::move(l), {a, gate});
}

NodeId GraphBuilder::patch_embed(NodeId in, std::int64_t patch_size,
                                 std::int64_t embed_dim, std::string name) {
  const TensorShape is = at(in).output;
  if (patch_size <= 0 || is.h % patch_size != 0 || is.w % patch_size != 0) {
    throw std::invalid_argument("patch_embed: image not divisible by patch");
  }
  const std::int64_t tokens = (is.h / patch_size) * (is.w / patch_size) + 1;
  TensorShape os{is.n, embed_dim, tokens, 1};

  Layer l;
  l.type = OpType::kPatchEmbed;
  l.name = name.empty() ? auto_name("patch_embed") : std::move(name);
  l.input = is;
  l.output = os;
  l.conv = {patch_size, patch_size, patch_size, 0, 1, embed_dim};
  const std::int64_t macs =
      is.n * embed_dim * (tokens - 1) * is.c * patch_size * patch_size;
  l.flops = 2 * macs;
  // Projection weights + class token + positional embeddings.
  l.params = embed_dim * is.c * patch_size * patch_size + embed_dim +
             embed_dim + tokens * embed_dim;
  l.mem_bytes = activation_bytes(is) + activation_bytes(os) +
                l.params * kBytesPerElement;
  return append(std::move(l), {in});
}

NodeId GraphBuilder::attention(NodeId in, std::int64_t heads,
                               std::string name) {
  const TensorShape is = at(in).output;
  if (is.w != 1 || heads <= 0 || is.c % heads != 0) {
    throw std::invalid_argument(
        "attention: expects token tensor (N, D, S, 1) with D divisible by "
        "heads");
  }
  const std::int64_t d = is.c;
  const std::int64_t s = is.h;

  Layer l;
  l.type = OpType::kMultiHeadAttention;
  l.name = name.empty() ? auto_name("mha") : std::move(name);
  l.input = is;
  l.output = is;
  l.attn = {heads, d, d / heads, s};
  // QKV projections (3 s d^2) + scores (s^2 d) + value mix (s^2 d) +
  // output projection (s d^2), in MACs, per sample.
  const std::int64_t macs = is.n * (4 * s * d * d + 2 * s * s * d);
  l.flops = 2 * macs;
  l.params = 4 * d * d + 4 * d;
  l.mem_bytes = 2 * activation_bytes(is) + l.params * kBytesPerElement +
                is.n * heads * s * s * kBytesPerElement;  // attention map
  return append(std::move(l), {in});
}

NodeId GraphBuilder::flatten(NodeId in, std::string name) {
  const TensorShape is = at(in).output;
  TensorShape os{is.n, is.elements_per_sample(), 1, 1};
  Layer l;
  l.type = OpType::kFlatten;
  l.name = name.empty() ? auto_name("flatten") : std::move(name);
  l.input = is;
  l.output = os;
  l.flops = 0;
  l.mem_bytes = 0;  // view only
  return append(std::move(l), {in});
}

NodeId GraphBuilder::dropout(NodeId in, std::string name) {
  // Inference-time dropout is an identity; it stays in the graph because the
  // operator-type histogram is a global feature.
  const TensorShape is = at(in).output;
  Layer l;
  l.type = OpType::kDropout;
  l.name = name.empty() ? auto_name("dropout") : std::move(name);
  l.input = is;
  l.output = is;
  l.flops = 0;
  l.mem_bytes = 0;
  return append(std::move(l), {in});
}

Graph GraphBuilder::build() {
  Graph g(std::move(graph_name_), std::move(layers_), std::move(producers_));
  g.validate();
  layers_.clear();
  producers_.clear();
  name_counter_ = 0;
  return g;
}

}  // namespace powerlens::dnn
