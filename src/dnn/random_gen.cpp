#include "dnn/random_gen.hpp"

#include "dnn/builder.hpp"

#include <algorithm>
#include <array>
#include <string>

namespace powerlens::dnn {

RandomDnnGenerator::RandomDnnGenerator(std::uint64_t seed,
                                       RandomDnnConfig config)
    : config_(config), rng_(seed) {}

int RandomDnnGenerator::uniform_int(int lo, int hi) {
  return std::uniform_int_distribution<int>(lo, hi)(rng_);
}

bool RandomDnnGenerator::chance(double p) {
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < p;
}

std::int64_t RandomDnnGenerator::pick_width() {
  // Widths are multiples of 8 between min and max, log-uniform-ish by
  // doubling a base draw.
  const std::int64_t base = 8 * uniform_int(
      static_cast<int>(config_.min_width / 8),
      static_cast<int>(config_.max_width / 32));
  const std::int64_t scaled = base << uniform_int(0, 2);
  return std::clamp(scaled, config_.min_width, config_.max_width);
}

Graph RandomDnnGenerator::generate() {
  ++counter_;
  switch (uniform_int(0, 2)) {
    case 0: return generate_plain_cnn();
    case 1: return generate_residual_cnn();
    default: return generate_transformer();
  }
}

Graph RandomDnnGenerator::generate_plain_cnn() {
  GraphBuilder b("rand_plain_" + std::to_string(counter_),
                 {config_.batch, 3, 224, 224});
  NodeId x = b.input();

  const int stages = uniform_int(config_.min_stages, config_.max_stages);
  std::int64_t width = std::clamp<std::int64_t>(pick_width() / 4,
                                                config_.min_width, 256);
  static constexpr std::array<std::int64_t, 3> kKernels{1, 3, 5};
  for (int s = 0; s < stages; ++s) {
    const int blocks =
        uniform_int(config_.min_blocks_per_stage, config_.max_blocks_per_stage);
    for (int i = 0; i < blocks; ++i) {
      const std::int64_t k =
          kKernels[static_cast<std::size_t>(uniform_int(0, 2))];
      x = b.conv2d(x, width, k, 1, k / 2);
      if (chance(0.7)) x = b.batch_norm(x);
      x = chance(0.8) ? b.relu(x) : b.hardswish(x);
    }
    if (b.shape(x).h >= 4) {
      x = chance(0.5) ? b.max_pool2d(x, 2, 2) : b.avg_pool2d(x, 2, 2);
    }
    width = std::min(width * 2, config_.max_width);
  }
  x = b.adaptive_avg_pool2d(x, 1);
  x = b.flatten(x);
  if (chance(0.5)) {
    x = b.linear(x, 1024);
    x = b.relu(x);
  }
  x = b.linear(x, 1000);
  return b.build();
}

Graph RandomDnnGenerator::generate_residual_cnn() {
  GraphBuilder b("rand_residual_" + std::to_string(counter_),
                 {config_.batch, 3, 224, 224});
  NodeId x = b.input();
  x = b.conv2d(x, 64, 7, 2, 3);
  x = b.batch_norm(x);
  x = b.relu(x);
  x = b.max_pool2d(x, 3, 2, 1);

  const int stages = uniform_int(config_.min_stages, config_.max_stages);
  std::int64_t width = 64;
  const bool use_se = chance(0.4);
  const bool bottleneck = chance(0.5);
  const std::int64_t groups = chance(0.3) ? 32 : 1;

  for (int s = 0; s < stages; ++s) {
    const int blocks =
        uniform_int(config_.min_blocks_per_stage, config_.max_blocks_per_stage);
    for (int i = 0; i < blocks; ++i) {
      const std::int64_t stride = (s > 0 && i == 0 && b.shape(x).h > 7) ? 2 : 1;
      const NodeId block_in = x;
      NodeId y = x;
      if (bottleneck) {
        const std::int64_t mid = std::max<std::int64_t>(width / 4, groups);
        y = b.conv2d(y, mid, 1, 1, 0);
        y = b.batch_norm(y);
        y = b.relu(y);
        y = b.conv2d(y, mid, 3, stride, 1, groups);
        y = b.batch_norm(y);
        y = b.relu(y);
        y = b.conv2d(y, width, 1, 1, 0);
        y = b.batch_norm(y);
      } else {
        y = b.conv2d(y, width, 3, stride, 1);
        y = b.batch_norm(y);
        y = b.relu(y);
        y = b.conv2d(y, width, 3, 1, 1);
        y = b.batch_norm(y);
      }
      if (use_se) {
        NodeId g = b.adaptive_avg_pool2d(y, 1);
        g = b.conv2d(g, std::max<std::int64_t>(width / 4, 8), 1, 1, 0);
        g = b.relu(g);
        g = b.conv2d(g, width, 1, 1, 0);
        g = b.sigmoid(g);
        y = b.mul(y, g);
      }
      NodeId identity = block_in;
      if (stride != 1 || b.shape(block_in).c != width) {
        identity = b.conv2d(block_in, width, 1, stride, 0);
        identity = b.batch_norm(identity);
      }
      y = b.add(y, identity);
      x = b.relu(y);
    }
    width = std::min(width * 2, config_.max_width);
  }
  x = b.adaptive_avg_pool2d(x, 1);
  x = b.flatten(x);
  x = b.linear(x, 1000);
  return b.build();
}

Graph RandomDnnGenerator::generate_transformer() {
  GraphBuilder b("rand_transformer_" + std::to_string(counter_),
                 {config_.batch, 3, 224, 224});
  static constexpr std::array<std::int64_t, 3> kPatches{14, 16, 32};
  static constexpr std::array<std::int64_t, 4> kDims{192, 384, 768, 1024};
  static constexpr std::array<std::int64_t, 4> kHeads{4, 8, 12, 16};

  const std::int64_t patch =
      kPatches[static_cast<std::size_t>(uniform_int(0, 2))];
  std::int64_t dim = kDims[static_cast<std::size_t>(uniform_int(0, 3))];
  std::int64_t heads = kHeads[static_cast<std::size_t>(uniform_int(0, 3))];
  while (dim % heads != 0) heads /= 2;
  const int layers = uniform_int(config_.min_transformer_layers,
                                 config_.max_transformer_layers);
  const std::int64_t mlp_dim = dim * uniform_int(2, 4);

  NodeId x = b.input();
  x = b.patch_embed(x, patch, dim);
  for (int l = 0; l < layers; ++l) {
    NodeId skip = x;
    NodeId y = b.layer_norm(x);
    y = b.attention(y, heads);
    x = b.add(y, skip);
    skip = x;
    y = b.layer_norm(x);
    y = b.linear(y, mlp_dim);
    y = b.gelu(y);
    y = b.linear(y, dim);
    x = b.add(y, skip);
  }
  x = b.layer_norm(x);
  x = b.adaptive_avg_pool2d(x, 1);
  x = b.flatten(x);
  x = b.linear(x, 1000);
  return b.build();
}

}  // namespace powerlens::dnn
