// Random DNN generator for the model-training phase (paper section 2.2).
//
// The dataset generator "uses a DNN generator to produce a large variety of
// neural networks by randomly combining features mentioned in section 2.1.2".
// This generator emits three architecture families (plain CNNs, residual /
// squeeze-excitation CNNs, and transformer encoders) with randomized depth,
// widths, kernel sizes, strides, and branching, so the feature space the
// prediction models see at training time covers the zoo models they meet at
// deployment time.
#pragma once

#include "dnn/graph.hpp"

#include <cstdint>
#include <random>

namespace powerlens::dnn {

struct RandomDnnConfig {
  std::int64_t batch = 8;
  int min_stages = 2;
  int max_stages = 5;
  int min_blocks_per_stage = 1;
  int max_blocks_per_stage = 8;
  std::int64_t min_width = 16;
  std::int64_t max_width = 1024;
  int min_transformer_layers = 2;
  int max_transformer_layers = 16;
};

class RandomDnnGenerator {
 public:
  explicit RandomDnnGenerator(std::uint64_t seed,
                              RandomDnnConfig config = {});

  // Generates the next random network. Successive calls use fresh
  // pseudo-random draws; the whole sequence is reproducible from the seed.
  Graph generate();

  // Positions the name counter so the next generate() emits "rand_*_{n+1}".
  // Used by per-network RNG stream splitting: each network n gets its own
  // generator seeded from split_seed(seed, n), and this keeps the generated
  // names globally unique and identical to a single serial sequence.
  void set_sequence_index(std::uint64_t n) noexcept { counter_ = n; }

 private:
  Graph generate_plain_cnn();
  Graph generate_residual_cnn();
  Graph generate_transformer();

  int uniform_int(int lo, int hi);
  std::int64_t pick_width();
  bool chance(double p);

  RandomDnnConfig config_;
  std::mt19937_64 rng_;
  std::uint64_t counter_ = 0;
};

}  // namespace powerlens::dnn
