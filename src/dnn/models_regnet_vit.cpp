// RegNetX-32GF, RegNetY-128GF, ViT-B/16, and ViT-B/32 builders, plus the
// model-zoo registry.
#include "dnn/builder.hpp"
#include "dnn/models.hpp"

#include <array>
#include <stdexcept>
#include <string>

namespace powerlens::dnn {

namespace {

constexpr TensorShape imagenet_input(std::int64_t batch) {
  return {batch, 3, 224, 224};
}

NodeId se_gate(GraphBuilder& b, NodeId x, std::int64_t channels,
               std::int64_t squeeze) {
  NodeId g = b.adaptive_avg_pool2d(x, 1);
  g = b.conv2d(g, squeeze, 1, 1, 0);
  g = b.relu(g);
  g = b.conv2d(g, channels, 1, 1, 0);
  g = b.sigmoid(g);
  return b.mul(x, g);
}

// RegNet X/Y bottleneck block (bottleneck ratio 1): 1x1 -> grouped 3x3 ->
// (optional SE) -> 1x1, with a projected residual on stride/width change.
NodeId regnet_block(GraphBuilder& b, NodeId x, std::int64_t width,
                    std::int64_t stride, std::int64_t group_width,
                    bool use_se, std::int64_t se_in_channels) {
  NodeId identity = x;
  NodeId y = b.conv2d(x, width, 1, 1, 0);
  y = b.batch_norm(y);
  y = b.relu(y);
  y = b.conv2d(y, width, 3, stride, 1, /*groups=*/width / group_width);
  y = b.batch_norm(y);
  y = b.relu(y);
  if (use_se) {
    // RegNetY squeezes relative to the block *input* width (se_ratio 0.25).
    y = se_gate(b, y, width, se_in_channels / 4);
  }
  y = b.conv2d(y, width, 1, 1, 0);
  y = b.batch_norm(y);
  if (stride != 1 || b.shape(x).c != width) {
    identity = b.conv2d(x, width, 1, stride, 0);
    identity = b.batch_norm(identity);
  }
  y = b.add(y, identity);
  return b.relu(y);
}

struct RegNetCfg {
  std::array<int, 4> depths;
  std::array<std::int64_t, 4> widths;
  std::int64_t group_width;
  bool use_se;
};

Graph make_regnet(std::string name, std::int64_t batch, const RegNetCfg& cfg) {
  GraphBuilder b(std::move(name), imagenet_input(batch));
  NodeId x = b.input();
  x = b.conv2d(x, 32, 3, 2, 1, 1, "stem_conv");
  x = b.batch_norm(x);
  x = b.relu(x);

  for (std::size_t stage = 0; stage < 4; ++stage) {
    for (int blk = 0; blk < cfg.depths[stage]; ++blk) {
      const std::int64_t stride = blk == 0 ? 2 : 1;
      const std::int64_t se_in = b.shape(x).c;
      x = regnet_block(b, x, cfg.widths[stage], stride, cfg.group_width,
                       cfg.use_se, se_in);
    }
  }
  x = b.adaptive_avg_pool2d(x, 1);
  x = b.flatten(x);
  x = b.linear(x, 1000);
  return b.build();
}

Graph make_vit(std::string name, std::int64_t batch, std::int64_t patch) {
  constexpr std::int64_t kDim = 768;
  constexpr std::int64_t kHeads = 12;
  constexpr std::int64_t kMlpDim = 3072;
  constexpr int kLayers = 12;

  GraphBuilder b(std::move(name), imagenet_input(batch));
  NodeId x = b.input();
  x = b.patch_embed(x, patch, kDim);
  x = b.dropout(x);

  for (int l = 0; l < kLayers; ++l) {
    const std::string tag = "enc" + std::to_string(l);
    NodeId skip = x;
    NodeId y = b.layer_norm(x, tag + "_ln1");
    y = b.attention(y, kHeads, tag + "_mha");
    y = b.dropout(y);
    x = b.add(y, skip, tag + "_add1");

    skip = x;
    y = b.layer_norm(x, tag + "_ln2");
    y = b.linear(y, kMlpDim, tag + "_mlp_fc1");
    y = b.gelu(y, tag + "_gelu");
    y = b.linear(y, kDim, tag + "_mlp_fc2");
    y = b.dropout(y);
    x = b.add(y, skip, tag + "_add2");
  }

  x = b.layer_norm(x, "final_ln");
  // Classification head reads the class token; modelled as a global pool over
  // tokens followed by the head projection.
  x = b.adaptive_avg_pool2d(x, 1, "cls_token");
  x = b.flatten(x);
  x = b.linear(x, 1000, "head");
  return b.build();
}

}  // namespace

Graph make_regnet_x_32gf(std::int64_t batch) {
  return make_regnet("regnet_x_32gf", batch,
                     {{2, 7, 13, 1}, {336, 672, 1344, 2520}, 168, false});
}

Graph make_regnet_y_128gf(std::int64_t batch) {
  return make_regnet("regnet_y_128gf", batch,
                     {{2, 7, 17, 1}, {528, 1056, 2904, 7392}, 264, true});
}

Graph make_vit_base_16(std::int64_t batch) {
  return make_vit("vit_base_16", batch, 16);
}

Graph make_vit_base_32(std::int64_t batch) {
  return make_vit("vit_base_32", batch, 32);
}

std::span<const ModelSpec> model_zoo() {
  static constexpr std::array<ModelSpec, 12> kZoo{{
      {"alexnet", &make_alexnet},
      {"googlenet", &make_googlenet},
      {"vgg19", &make_vgg19},
      {"mobilenet_v3", &make_mobilenet_v3_large},
      {"densenet201", &make_densenet201},
      {"resnext101", &make_resnext101_32x8d},
      {"resnet34", &make_resnet34},
      {"resnet152", &make_resnet152},
      {"regnet_x_32gf", &make_regnet_x_32gf},
      {"regnet_y_128gf", &make_regnet_y_128gf},
      {"vit_base_16", &make_vit_base_16},
      {"vit_base_32", &make_vit_base_32},
  }};
  return kZoo;
}

Graph make_model(std::string_view name, std::int64_t batch) {
  for (const ModelSpec& spec : model_zoo()) {
    if (spec.name == name) return spec.build(batch);
  }
  throw std::invalid_argument("make_model: unknown model '" +
                              std::string(name) + "'");
}

}  // namespace powerlens::dnn
