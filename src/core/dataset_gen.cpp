#include "core/dataset_gen.hpp"

#include "features/depthwise.hpp"
#include "features/global.hpp"
#include "hw/analytic.hpp"
#include "hw/power_model.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

namespace powerlens::core {

clustering::ClusteringHyperparams HyperparamGrid::at(std::size_t index) const {
  if (index >= size()) {
    throw std::out_of_range("HyperparamGrid::at: index out of range");
  }
  const std::size_t ei = index / min_pts_values.size();
  const std::size_t mi = index % min_pts_values.size();
  return {eps_values[ei], min_pts_values[mi]};
}

std::size_t HyperparamGrid::index_of(
    const clustering::ClusteringHyperparams& hp) const {
  for (std::size_t i = 0; i < size(); ++i) {
    if (at(i) == hp) return i;
  }
  throw std::invalid_argument("HyperparamGrid::index_of: not a grid point");
}

namespace {

// The CPU planes the labelling pipeline needs from a CostTable: block
// feasibility is always evaluated at the platform maximum, labels at the
// configured level (usually the same).
std::vector<std::size_t> label_cpu_levels(const hw::Platform& platform,
                                          std::size_t cpu_level_for_labels) {
  std::vector<std::size_t> levels = {platform.max_cpu_level()};
  if (cpu_level_for_labels != platform.max_cpu_level()) {
    levels.push_back(cpu_level_for_labels);
  }
  return levels;
}

}  // namespace

double feasible_block_duration(const hw::CostTable& costs,
                               const hw::Platform& platform) {
  const double switch_floor =
      1.5 * (platform.dvfs.latency_s + platform.dvfs.stall_s);
  const double pass_time =
      costs
          .block_cost(0, costs.num_layers(), platform.gpu_levels() / 2,
                      platform.max_cpu_level())
          .time_s;
  return std::max(switch_floor, pass_time / 10.0);
}

double feasible_block_duration(const dnn::Graph& graph,
                               const hw::Platform& platform) {
  const std::size_t cpu_levels[] = {platform.max_cpu_level()};
  return feasible_block_duration(
      hw::CostTable(platform, graph.layers(), cpu_levels), platform);
}

clustering::PowerView enforce_min_block_duration(
    const hw::CostTable& costs, const clustering::PowerView& view,
    const hw::Platform& platform, double min_duration_s) {
  if (view.num_layers() != costs.num_layers()) {
    throw std::invalid_argument(
        "enforce_min_block_duration: view does not match graph");
  }
  const std::size_t mid_level = platform.gpu_levels() / 2;
  const std::size_t cpu = platform.max_cpu_level();

  std::vector<clustering::PowerBlock> blocks(view.blocks());
  auto duration = [&](const clustering::PowerBlock& b) {
    return costs.block_cost(b.begin, b.end, mid_level, cpu).time_s;
  };
  bool changed = true;
  while (changed && blocks.size() > 1) {
    changed = false;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      if (duration(blocks[i]) >= min_duration_s) continue;
      const std::size_t target = i == 0 ? 1 : i - 1;
      const std::size_t lo = std::min(i, target);
      blocks[lo].end = blocks[std::max(i, target)].end;
      blocks.erase(blocks.begin() + static_cast<std::ptrdiff_t>(lo) + 1);
      changed = true;
      break;
    }
  }
  return clustering::PowerView(std::move(blocks), view.num_layers());
}

clustering::PowerView enforce_min_block_duration(
    const dnn::Graph& graph, const clustering::PowerView& view,
    const hw::Platform& platform, double min_duration_s) {
  const std::size_t cpu_levels[] = {platform.max_cpu_level()};
  return enforce_min_block_duration(
      hw::CostTable(platform, graph.layers(), cpu_levels), view, platform,
      min_duration_s);
}

ViewEvaluation evaluate_view_oracle(const hw::CostTable& costs,
                                    const clustering::PowerView& view,
                                    const hw::Platform& platform,
                                    std::size_t cpu_level) {
  if (view.num_layers() != costs.num_layers()) {
    throw std::invalid_argument(
        "evaluate_view_oracle: view does not match graph");
  }
  ViewEvaluation ev;
  const hw::PowerModel power(platform);
  std::size_t prev_level = platform.max_gpu_level();  // MAXN start

  for (const clustering::PowerBlock& b : view.blocks()) {
    const std::size_t level = costs.optimal_gpu_level(b.begin, b.end,
                                                      cpu_level);
    ev.block_levels.push_back(level);

    const hw::BlockCost cost = costs.block_cost(b.begin, b.end, level,
                                                cpu_level);
    ev.time_s += cost.time_s;
    ev.energy_j += cost.energy_j;

    // DVFS switch at the block boundary (steady state repeats every pass):
    //  - the host stall while the driver call blocks, and
    //  - the settle latency, during which the block still runs at the
    //    previous level. Modelled as an energy penalty proportional to the
    //    power gap for min(latency, block duration) — this is what makes
    //    fine-grained views lose on short passes, where a requested
    //    frequency never takes effect before the next preset point.
    if (level != prev_level) {
      const double stall_power = power.total_w(
          platform.gpu_freq(prev_level), platform.cpu_freq(cpu_level),
          hw::ActivityState{0.0, 0.0, 0.2});
      ev.time_s += platform.dvfs.stall_s;
      ev.energy_j += stall_power * platform.dvfs.stall_s;

      const double act = 0.7;  // representative block activity
      const double p_prev = power.total_w(platform.gpu_freq(prev_level),
                                          platform.cpu_freq(cpu_level),
                                          hw::ActivityState{act, act, 0.2});
      const double p_target = power.total_w(platform.gpu_freq(level),
                                            platform.cpu_freq(cpu_level),
                                            hw::ActivityState{act, act, 0.2});
      const double settle =
          std::min(platform.dvfs.latency_s, cost.time_s);
      ev.energy_j += std::abs(p_prev - p_target) * settle;
    }
    prev_level = level;
  }
  return ev;
}

ViewEvaluation evaluate_view_oracle(const dnn::Graph& graph,
                                    const clustering::PowerView& view,
                                    const hw::Platform& platform,
                                    std::size_t cpu_level) {
  if (view.num_layers() != graph.size()) {
    throw std::invalid_argument(
        "evaluate_view_oracle: view does not match graph");
  }
  const std::size_t cpu_levels[] = {cpu_level};
  return evaluate_view_oracle(
      hw::CostTable(platform, graph.layers(), cpu_levels), view, platform,
      cpu_level);
}

namespace {

// One full hyperparameter-grid sweep: every candidate view (feasibility-
// enforced) plus its oracle evaluation, and the winning class. Shared by
// best_hyperparam_class and generate_datasets so the generator can reuse the
// winning view and block levels without recomputing them.
struct GridSweep {
  std::size_t best_class = 0;
  std::vector<clustering::PowerView> views;  // one per grid point
  std::vector<ViewEvaluation> evals;
};

GridSweep sweep_hyperparam_grid(const linalg::Matrix& distances,
                                const hw::CostTable& costs,
                                const hw::Platform& platform,
                                const DatasetGenConfig& config) {
  GridSweep sweep;
  const double min_duration = feasible_block_duration(costs, platform);
  std::vector<double> energies(config.grid.size());
  std::vector<std::size_t> block_counts(config.grid.size());
  double best_energy = -1.0;
  for (std::size_t k = 0; k < config.grid.size(); ++k) {
    sweep.views.push_back(enforce_min_block_duration(
        costs,
        clustering::build_power_view_from_distances(distances,
                                                    config.grid.at(k)),
        platform, min_duration));
    sweep.evals.push_back(evaluate_view_oracle(
        costs, sweep.views.back(), platform, config.cpu_level_for_labels));
    energies[k] = sweep.evals.back().energy_j;
    block_counts[k] = sweep.views.back().block_count();
    // Strict < keeps the lowest grid index on exact float ties, so the
    // reference optimum is itself deterministic.
    if (best_energy < 0.0 || energies[k] < best_energy) {
      best_energy = energies[k];
    }
  }
  // Among hyperparameter classes within half a percent of the energy
  // optimum, prefer the finest feasible view: per-block instrumentation
  // hedges against runtime variation at no modelled energy cost. Ties are
  // broken deterministically — strictly-more blocks wins, equal block
  // counts keep the lower grid index (k ascends and the comparison is
  // strict) — so labels are stable across thread counts and platforms.
  std::size_t best_class = 0;
  std::size_t best_blocks = 0;
  for (std::size_t k = 0; k < config.grid.size(); ++k) {
    if (energies[k] <= best_energy * 1.005 && block_counts[k] > best_blocks) {
      best_blocks = block_counts[k];
      best_class = k;
    }
  }
  sweep.best_class = best_class;
  return sweep;
}

linalg::Matrix network_distances(const dnn::Graph& graph,
                                 const DatasetGenConfig& config) {
  return clustering::power_distances_for(
      features::DepthwiseFeatureExtractor::extract(graph), config.distance);
}

}  // namespace

std::size_t best_hyperparam_class(const dnn::Graph& graph,
                                  const hw::CostTable& costs,
                                  const hw::Platform& platform,
                                  const DatasetGenConfig& config) {
  return sweep_hyperparam_grid(network_distances(graph, config), costs,
                               platform, config)
      .best_class;
}

std::size_t best_hyperparam_class(const dnn::Graph& graph,
                                  const hw::Platform& platform,
                                  const DatasetGenConfig& config) {
  const hw::CostTable costs(
      platform, graph.layers(),
      label_cpu_levels(platform, config.cpu_level_for_labels));
  return best_hyperparam_class(graph, costs, platform, config);
}

GeneratedDatasets generate_datasets(const hw::Platform& platform,
                                    const DatasetGenConfig& config) {
  if (config.num_networks == 0) {
    throw std::invalid_argument("generate_datasets: num_networks == 0");
  }
  DatasetGenConfig cfg = config;
  if (cfg.cpu_level_for_labels == 0) {
    cfg.cpu_level_for_labels = platform.max_cpu_level();
  }

  obs::TraceWriter& tw = obs::default_trace();
  obs::ScopedSpan gen_span(
      tw, "generate_datasets", "pipeline",
      {obs::TraceArg::num("num_networks",
                          static_cast<double>(cfg.num_networks))});
  obs::MetricsRegistry& metrics = obs::global_metrics();
  obs::Counter& networks_ctr = metrics.counter(
      "powerlens_offline_networks_total", "networks labelled offline");
  obs::Counter& blocks_ctr = metrics.counter(
      "powerlens_offline_blocks_total", "dataset B block rows generated");
  obs::Histogram& network_hist = metrics.histogram(
      "powerlens_offline_network_seconds", obs::default_seconds_buckets(),
      "wall time to label one network");
  obs::log_info("dataset_gen", "generating datasets",
                {{"networks", static_cast<double>(cfg.num_networks)}});

  // One slot per network, written only by the task labelling that network;
  // the merge below reads them in index order, so the result is independent
  // of how tasks were scheduled across threads.
  struct NetworkRows {
    std::vector<double> a_struct, a_stats;
    int a_label = 0;
    std::vector<std::vector<double>> b_struct, b_stats;
    std::vector<int> b_labels;
  };
  std::vector<NetworkRows> rows(cfg.num_networks);

  util::parallel_for(cfg.parallel, 0, cfg.num_networks, [&](std::size_t n) {
    obs::ScopedSpan net_span(
        tw, "network", "pipeline",
        {obs::TraceArg::num("index", static_cast<double>(n))});
    const auto net_start = std::chrono::steady_clock::now();
    dnn::RandomDnnGenerator generator(util::split_seed(cfg.seed, n),
                                      cfg.dnn_config);
    generator.set_sequence_index(n);
    const dnn::Graph graph = generator.generate();

    const hw::CostTable costs(
        platform, graph.layers(),
        label_cpu_levels(platform, cfg.cpu_level_for_labels));
    const linalg::Matrix distances = network_distances(graph, cfg);
    const GridSweep sweep =
        sweep_hyperparam_grid(distances, costs, platform, cfg);

    NetworkRows& out = rows[n];

    // Dataset A row: whole-network features -> best hyperparameter class.
    const features::GlobalFeatures net_features =
        features::GlobalFeatureExtractor::extract(graph);
    out.a_struct = net_features.structural;
    out.a_stats = net_features.statistics;
    out.a_label = static_cast<int>(sweep.best_class);

    // Dataset B rows: blocks of the best view -> optimal frequency level.
    // The sweep already built and evaluated the winning view; reuse it.
    const clustering::PowerView& view = sweep.views[sweep.best_class];
    const ViewEvaluation& ev = sweep.evals[sweep.best_class];
    for (std::size_t b = 0; b < view.block_count(); ++b) {
      const clustering::PowerBlock& blk = view.blocks()[b];
      const features::GlobalFeatures block_features =
          features::GlobalFeatureExtractor::extract(graph, blk.begin,
                                                    blk.end);
      out.b_struct.push_back(block_features.structural);
      out.b_stats.push_back(block_features.statistics);
      out.b_labels.push_back(static_cast<int>(ev.block_levels[b]));
    }

    networks_ctr.inc();
    blocks_ctr.inc(static_cast<double>(out.b_labels.size()));
    network_hist.observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      net_start)
            .count());
  });

  GeneratedDatasets out;
  std::vector<std::vector<double>> a_struct, a_stats, b_struct, b_stats;
  std::vector<int> a_labels, b_labels;
  for (NetworkRows& r : rows) {
    ++out.networks_generated;
    a_struct.push_back(std::move(r.a_struct));
    a_stats.push_back(std::move(r.a_stats));
    a_labels.push_back(r.a_label);
    out.blocks_generated += r.b_labels.size();
    std::move(r.b_struct.begin(), r.b_struct.end(),
              std::back_inserter(b_struct));
    std::move(r.b_stats.begin(), r.b_stats.end(),
              std::back_inserter(b_stats));
    b_labels.insert(b_labels.end(), r.b_labels.begin(), r.b_labels.end());
  }

  auto to_matrix = [](const std::vector<std::vector<double>>& mat_rows) {
    linalg::Matrix m(mat_rows.size(),
                     mat_rows.empty() ? 0 : mat_rows.front().size());
    for (std::size_t r = 0; r < mat_rows.size(); ++r) {
      for (std::size_t c = 0; c < mat_rows[r].size(); ++c) {
        m(r, c) = mat_rows[r][c];
      }
    }
    return m;
  };
  out.dataset_a = {to_matrix(a_struct), to_matrix(a_stats),
                   std::move(a_labels)};
  out.dataset_b = {to_matrix(b_struct), to_matrix(b_stats),
                   std::move(b_labels)};
  out.dataset_a.validate();
  out.dataset_b.validate();
  return out;
}

}  // namespace powerlens::core
