#include "core/dataset_gen.hpp"

#include "features/depthwise.hpp"
#include "features/global.hpp"
#include "hw/analytic.hpp"
#include "hw/power_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace powerlens::core {

clustering::ClusteringHyperparams HyperparamGrid::at(std::size_t index) const {
  if (index >= size()) {
    throw std::out_of_range("HyperparamGrid::at: index out of range");
  }
  const std::size_t ei = index / min_pts_values.size();
  const std::size_t mi = index % min_pts_values.size();
  return {eps_values[ei], min_pts_values[mi]};
}

std::size_t HyperparamGrid::index_of(
    const clustering::ClusteringHyperparams& hp) const {
  for (std::size_t i = 0; i < size(); ++i) {
    if (at(i) == hp) return i;
  }
  throw std::invalid_argument("HyperparamGrid::index_of: not a grid point");
}

double feasible_block_duration(const dnn::Graph& graph,
                               const hw::Platform& platform) {
  const double switch_floor =
      1.5 * (platform.dvfs.latency_s + platform.dvfs.stall_s);
  const double pass_time =
      analytic_block_cost(platform, graph.layers(),
                          platform.gpu_levels() / 2,
                          platform.max_cpu_level())
          .time_s;
  return std::max(switch_floor, pass_time / 10.0);
}

clustering::PowerView enforce_min_block_duration(
    const dnn::Graph& graph, const clustering::PowerView& view,
    const hw::Platform& platform, double min_duration_s) {
  if (view.num_layers() != graph.size()) {
    throw std::invalid_argument(
        "enforce_min_block_duration: view does not match graph");
  }
  const std::size_t mid_level = platform.gpu_levels() / 2;
  const std::size_t cpu = platform.max_cpu_level();

  std::vector<clustering::PowerBlock> blocks(view.blocks());
  auto duration = [&](const clustering::PowerBlock& b) {
    return analytic_block_cost(platform,
                               graph.layers().subspan(b.begin, b.size()),
                               mid_level, cpu)
        .time_s;
  };
  bool changed = true;
  while (changed && blocks.size() > 1) {
    changed = false;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      if (duration(blocks[i]) >= min_duration_s) continue;
      const std::size_t target = i == 0 ? 1 : i - 1;
      const std::size_t lo = std::min(i, target);
      blocks[lo].end = blocks[std::max(i, target)].end;
      blocks.erase(blocks.begin() + static_cast<std::ptrdiff_t>(lo) + 1);
      changed = true;
      break;
    }
  }
  return clustering::PowerView(std::move(blocks), graph.size());
}

ViewEvaluation evaluate_view_oracle(const dnn::Graph& graph,
                                    const clustering::PowerView& view,
                                    const hw::Platform& platform,
                                    std::size_t cpu_level) {
  if (view.num_layers() != graph.size()) {
    throw std::invalid_argument(
        "evaluate_view_oracle: view does not match graph");
  }
  ViewEvaluation ev;
  const hw::PowerModel power(platform);
  std::size_t prev_level = platform.max_gpu_level();  // MAXN start
  bool first = true;

  for (const clustering::PowerBlock& b : view.blocks()) {
    const auto layers = graph.layers().subspan(b.begin, b.size());
    const std::size_t level =
        hw::optimal_gpu_level(platform, layers, cpu_level);
    ev.block_levels.push_back(level);

    const hw::BlockCost cost =
        hw::analytic_block_cost(platform, layers, level, cpu_level);
    ev.time_s += cost.time_s;
    ev.energy_j += cost.energy_j;

    // DVFS switch at the block boundary (steady state repeats every pass):
    //  - the host stall while the driver call blocks, and
    //  - the settle latency, during which the block still runs at the
    //    previous level. Modelled as an energy penalty proportional to the
    //    power gap for min(latency, block duration) — this is what makes
    //    fine-grained views lose on short passes, where a requested
    //    frequency never takes effect before the next preset point.
    (void)first;
    if (level != prev_level) {
      const double stall_power = power.total_w(
          platform.gpu_freq(prev_level), platform.cpu_freq(cpu_level),
          hw::ActivityState{0.0, 0.0, 0.2});
      ev.time_s += platform.dvfs.stall_s;
      ev.energy_j += stall_power * platform.dvfs.stall_s;

      const double act = 0.7;  // representative block activity
      const double p_prev = power.total_w(platform.gpu_freq(prev_level),
                                          platform.cpu_freq(cpu_level),
                                          hw::ActivityState{act, act, 0.2});
      const double p_target = power.total_w(platform.gpu_freq(level),
                                            platform.cpu_freq(cpu_level),
                                            hw::ActivityState{act, act, 0.2});
      const double settle =
          std::min(platform.dvfs.latency_s, cost.time_s);
      ev.energy_j += std::abs(p_prev - p_target) * settle;
    }
    prev_level = level;
    first = false;
  }
  return ev;
}

std::size_t best_hyperparam_class(const dnn::Graph& graph,
                                  const hw::Platform& platform,
                                  const DatasetGenConfig& config) {
  const linalg::Matrix depthwise =
      features::DepthwiseFeatureExtractor::extract(graph);
  const linalg::Matrix distances =
      clustering::power_distances_for(depthwise, config.distance);

  std::vector<double> energies(config.grid.size());
  std::vector<std::size_t> block_counts(config.grid.size());
  double best_energy = -1.0;
  for (std::size_t k = 0; k < config.grid.size(); ++k) {
    const clustering::PowerView view = enforce_min_block_duration(
        graph,
        clustering::build_power_view_from_distances(distances,
                                                    config.grid.at(k)),
        platform, feasible_block_duration(graph, platform));
    const ViewEvaluation ev = evaluate_view_oracle(
        graph, view, platform, config.cpu_level_for_labels);
    energies[k] = ev.energy_j;
    block_counts[k] = view.block_count();
    if (best_energy < 0.0 || ev.energy_j < best_energy) {
      best_energy = ev.energy_j;
    }
  }
  // Among hyperparameter classes within half a percent of the energy
  // optimum, prefer the finest feasible view: per-block instrumentation
  // hedges against runtime variation at no modelled energy cost.
  std::size_t best_class = 0;
  std::size_t best_blocks = 0;
  for (std::size_t k = 0; k < config.grid.size(); ++k) {
    if (energies[k] <= best_energy * 1.005 && block_counts[k] > best_blocks) {
      best_blocks = block_counts[k];
      best_class = k;
    }
  }
  return best_class;
}

GeneratedDatasets generate_datasets(const hw::Platform& platform,
                                    const DatasetGenConfig& config) {
  if (config.num_networks == 0) {
    throw std::invalid_argument("generate_datasets: num_networks == 0");
  }
  DatasetGenConfig cfg = config;
  if (cfg.cpu_level_for_labels == 0) {
    cfg.cpu_level_for_labels = platform.max_cpu_level();
  }

  dnn::RandomDnnGenerator generator(cfg.seed, cfg.dnn_config);

  std::vector<std::vector<double>> a_struct, a_stats, b_struct, b_stats;
  std::vector<int> a_labels, b_labels;

  GeneratedDatasets out;
  for (std::size_t n = 0; n < cfg.num_networks; ++n) {
    const dnn::Graph graph = generator.generate();
    ++out.networks_generated;

    // Dataset A row: whole-network features -> best hyperparameter class.
    const features::GlobalFeatures net_features =
        features::GlobalFeatureExtractor::extract(graph);
    const std::size_t best_class =
        best_hyperparam_class(graph, platform, cfg);
    a_struct.push_back(net_features.structural);
    a_stats.push_back(net_features.statistics);
    a_labels.push_back(static_cast<int>(best_class));

    // Dataset B rows: blocks of the best view -> optimal frequency level.
    clustering::ClusteringConfig cc;
    cc.hyper = cfg.grid.at(best_class);
    cc.distance = cfg.distance;
    const clustering::PowerView view = enforce_min_block_duration(
        graph, clustering::build_power_view(graph, cc), platform,
        feasible_block_duration(graph, platform));
    const ViewEvaluation ev =
        evaluate_view_oracle(graph, view, platform, cfg.cpu_level_for_labels);
    for (std::size_t b = 0; b < view.block_count(); ++b) {
      const clustering::PowerBlock& blk = view.blocks()[b];
      const features::GlobalFeatures block_features =
          features::GlobalFeatureExtractor::extract(graph, blk.begin,
                                                    blk.end);
      b_struct.push_back(block_features.structural);
      b_stats.push_back(block_features.statistics);
      b_labels.push_back(static_cast<int>(ev.block_levels[b]));
      ++out.blocks_generated;
    }
  }

  auto to_matrix = [](const std::vector<std::vector<double>>& rows) {
    linalg::Matrix m(rows.size(), rows.empty() ? 0 : rows.front().size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
      for (std::size_t c = 0; c < rows[r].size(); ++c) m(r, c) = rows[r][c];
    }
    return m;
  };
  out.dataset_a = {to_matrix(a_struct), to_matrix(a_stats),
                   std::move(a_labels)};
  out.dataset_b = {to_matrix(b_struct), to_matrix(b_stats),
                   std::move(b_labels)};
  out.dataset_a.validate();
  out.dataset_b.validate();
  return out;
}

}  // namespace powerlens::core
