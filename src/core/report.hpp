// Human-readable profiling reports: the "power view" made visible.
//
// These helpers render what the framework knows about a network — per-layer
// roofline boundness, per-block decisions, and simulated power traces — into
// text/CSV, for debugging instrumentation plans and for the examples.
#pragma once

#include "core/powerlens.hpp"
#include "hw/sim_engine.hpp"

#include <iosfwd>

namespace powerlens::core {

// Per-layer profile at a fixed GPU level: index, name, type, time, share of
// pass time, bound ("compute"/"memory"/"launch"), arithmetic intensity.
void write_layer_profile(std::ostream& os, const dnn::Graph& graph,
                         const hw::Platform& platform, std::size_t gpu_level);

// Per-block summary of an optimization plan: range, layer count, dominant
// op, time share, chosen frequency.
void write_plan_summary(std::ostream& os, const dnn::Graph& graph,
                        const hw::Platform& platform,
                        const OptimizationPlan& plan);

// CSV of a simulated run's power samples ("time_s,power_w") plus the
// frequency trace as comment lines — importable into any plotting tool.
void write_power_trace_csv(std::ostream& os, const hw::ExecutionResult& r);

}  // namespace powerlens::core
