#include "core/metrics.hpp"

#include <stdexcept>

namespace powerlens::core {

double energy_efficiency(const hw::ExecutionResult& result) {
  return result.energy_efficiency();
}

double ee_gain(double ee_ours, double ee_baseline) {
  if (ee_baseline <= 0.0) {
    throw std::invalid_argument("ee_gain: baseline EE must be positive");
  }
  return (ee_ours - ee_baseline) / ee_baseline;
}

double ee_gain(const hw::ExecutionResult& ours,
               const hw::ExecutionResult& baseline) {
  return ee_gain(ours.energy_efficiency(), baseline.energy_efficiency());
}

double energy_reduction(const hw::ExecutionResult& ours,
                        const hw::ExecutionResult& baseline) {
  if (baseline.energy_j <= 0.0) {
    throw std::invalid_argument("energy_reduction: baseline energy <= 0");
  }
  return (baseline.energy_j - ours.energy_j) / baseline.energy_j;
}

double time_increase(const hw::ExecutionResult& ours,
                     const hw::ExecutionResult& baseline) {
  if (baseline.time_s <= 0.0) {
    throw std::invalid_argument("time_increase: baseline time <= 0");
  }
  return (ours.time_s - baseline.time_s) / baseline.time_s;
}

}  // namespace powerlens::core
