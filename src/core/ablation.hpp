// Ablation partitioners for Table 2 (paper section 3.2.3).
//
//   P-R: "the clustering algorithm is replaced with random block
//        partitioning" — same block count as the PowerLens view, boundaries
//        drawn uniformly at random over the layer axis.
//   P-N: "does not use any clustering algorithm and directly makes frequency
//        decisions for the entire DNN" — a single block spanning the network.
// Frequency decisions then run through exactly the same decision path as
// PowerLens (PowerLens::plan_for_view), isolating the clustering
// contribution.
#pragma once

#include "clustering/power_view.hpp"

#include <cstdint>

namespace powerlens::core {

// Random contiguous partition of [0, num_layers) into `num_blocks` blocks.
// Deterministic in `seed`. Throws std::invalid_argument if num_blocks is 0
// or exceeds num_layers.
clustering::PowerView random_power_view(std::size_t num_layers,
                                        std::size_t num_blocks,
                                        std::uint64_t seed);

// The whole network as one block.
clustering::PowerView single_block_view(std::size_t num_layers);

}  // namespace powerlens::core
