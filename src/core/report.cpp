#include "core/report.hpp"

#include "hw/analytic.hpp"
#include "hw/latency_model.hpp"

#include <iomanip>
#include <map>
#include <ostream>
#include <string>

namespace powerlens::core {

namespace {

const char* boundness(const hw::LayerTiming& t) {
  if (t.total_s <= 0.0) return "-";
  if (t.launch_s > std::max(t.compute_s, t.memory_s)) return "launch";
  return t.compute_s >= t.memory_s ? "compute" : "memory";
}

}  // namespace

void write_layer_profile(std::ostream& os, const dnn::Graph& graph,
                         const hw::Platform& platform,
                         std::size_t gpu_level) {
  const hw::LatencyModel latency(platform);
  const double gpu_f = platform.gpu_freq(gpu_level);
  const double cpu_f = platform.cpu_freq(platform.max_cpu_level());

  double total = 0.0;
  for (const dnn::Layer& l : graph.layers()) {
    total += latency.time_layer(l, gpu_f, cpu_f).total_s;
  }

  os << "# " << graph.name() << " @ " << std::fixed << std::setprecision(0)
     << gpu_f / 1e6 << " MHz, pass " << std::setprecision(2) << total * 1e3
     << " ms\n";
  os << std::left << std::setw(5) << "idx" << std::setw(24) << "layer"
     << std::setw(20) << "type" << std::setw(10) << "t_ms" << std::setw(8)
     << "share" << std::setw(9) << "bound" << "ai\n";
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const dnn::Layer& l = graph.layer(i);
    const hw::LayerTiming t = latency.time_layer(l, gpu_f, cpu_f);
    os << std::left << std::setw(5) << i << std::setw(24)
       << l.name.substr(0, 23) << std::setw(20) << dnn::op_name(l.type)
       << std::setw(10) << std::setprecision(3) << t.total_s * 1e3
       << std::setw(8)
       << (total > 0.0 ? std::to_string(
                             static_cast<int>(100.0 * t.total_s / total)) +
                             "%"
                       : "-")
       << std::setw(9) << boundness(t) << std::setprecision(1)
       << l.arithmetic_intensity() << "\n";
  }
}

void write_plan_summary(std::ostream& os, const dnn::Graph& graph,
                        const hw::Platform& platform,
                        const OptimizationPlan& plan) {
  os << "# plan for " << graph.name() << ": " << plan.view.block_count()
     << " power block(s), eps=" << plan.hyper.eps
     << " minPts=" << plan.hyper.min_pts << "\n";
  const std::size_t cpu = platform.max_cpu_level();
  double total = 0.0;
  std::vector<double> block_time(plan.view.block_count());
  for (std::size_t b = 0; b < plan.view.block_count(); ++b) {
    const clustering::PowerBlock& blk = plan.view.blocks()[b];
    block_time[b] =
        hw::analytic_block_cost(platform,
                                graph.layers().subspan(blk.begin, blk.size()),
                                plan.block_levels[b], cpu)
            .time_s;
    total += block_time[b];
  }
  for (std::size_t b = 0; b < plan.view.block_count(); ++b) {
    const clustering::PowerBlock& blk = plan.view.blocks()[b];
    // Dominant operator type by time share within the block.
    std::map<dnn::OpType, std::int64_t> flops_by_type;
    for (std::size_t i = blk.begin; i < blk.end; ++i) {
      flops_by_type[graph.layer(i).type] += graph.layer(i).flops;
    }
    dnn::OpType dominant = dnn::OpType::kInput;
    std::int64_t best = -1;
    for (const auto& [type, flops] : flops_by_type) {
      if (flops > best) {
        best = flops;
        dominant = type;
      }
    }
    os << "  block " << b << ": layers [" << blk.begin << ", " << blk.end
       << "), " << blk.size() << " ops, dominant "
       << dnn::op_name(dominant) << ", "
       << static_cast<int>(total > 0.0 ? 100.0 * block_time[b] / total : 0)
       << "% of time -> " << std::fixed << std::setprecision(0)
       << platform.gpu_freq(plan.block_levels[b]) / 1e6 << " MHz\n";
  }
}

void write_power_trace_csv(std::ostream& os, const hw::ExecutionResult& r) {
  os << std::setprecision(6);
  for (const hw::FreqTracePoint& p : r.gpu_trace) {
    os << "# freq_change t=" << p.time_s << " level=" << p.gpu_level << "\n";
  }
  os << "time_s,power_w\n";
  for (const hw::PowerSample& s : r.power_samples) {
    os << s.time_s << ',' << s.power_w << "\n";
  }
}

}  // namespace powerlens::core
