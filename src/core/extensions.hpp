// Extensions sketched in the paper's conclusion / related-work sections:
//
//   1. Joint CPU + GPU DVFS ("In the future, we will incorporate more
//      configurable optimization options into PowerLens, such as CPU DVFS").
//      Per power block, the oracle sweeps the (gpu_level, cpu_level) product
//      and the resulting plan presets both ladders at each instrumentation
//      point.
//   2. Batch-size co-optimization (related work [15]: "synergizing DVFS
//      technology with factors like batchsize"). For a model deployed with a
//      latency budget per image, the sweep picks the (batch, frequency)
//      pair maximizing energy efficiency.
#pragma once

#include "core/powerlens.hpp"

#include <functional>
#include <string>
#include <vector>

namespace powerlens::core {

struct JointPlan {
  clustering::PowerView view;
  std::vector<std::size_t> gpu_levels;  // one per block
  std::vector<std::size_t> cpu_levels;  // one per block
  hw::PresetSchedule schedule;          // GPU + CPU preset points
};

// Joint CPU+GPU oracle optimization: clusters exactly like
// PowerLens::optimize_oracle, then per block minimizes analytic energy over
// the full (gpu, cpu) level product.
JointPlan optimize_joint_oracle(const dnn::Graph& graph,
                                const hw::Platform& platform,
                                const DatasetGenConfig& config = {});

struct BatchChoice {
  std::int64_t batch = 0;
  double ee_images_per_joule = 0.0;
  double pass_latency_s = 0.0;  // time to complete one batch (response delay)
  std::size_t blocks = 0;
};

// Sweeps candidate batch sizes for a model: each candidate gets an oracle
// PowerLens plan, and candidates whose batch-completion latency exceeds
// `max_pass_latency_s` are skipped (0 disables the constraint). Larger
// batches amortize weight traffic and launch overhead (better EE) but delay
// results — the constraint captures that trade. Returns the EE-best
// feasible choice; throws std::invalid_argument if none is feasible.
BatchChoice choose_batch_size(
    const std::function<dnn::Graph(std::int64_t)>& build,
    std::span<const std::int64_t> candidates, const hw::Platform& platform,
    double max_pass_latency_s = 0.0,
    const DatasetGenConfig& config = {});

}  // namespace powerlens::core
