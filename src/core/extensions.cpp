#include "core/extensions.hpp"

#include "hw/analytic.hpp"

#include <stdexcept>

namespace powerlens::core {

JointPlan optimize_joint_oracle(const dnn::Graph& graph,
                                const hw::Platform& platform,
                                const DatasetGenConfig& config) {
  DatasetGenConfig cfg = config;
  if (cfg.cpu_level_for_labels == 0) {
    cfg.cpu_level_for_labels = platform.max_cpu_level();
  }
  const std::size_t cls = best_hyperparam_class(graph, platform, cfg);

  clustering::ClusteringConfig cc;
  cc.hyper = cfg.grid.at(cls);
  cc.distance = cfg.distance;
  const clustering::PowerView view = enforce_min_block_duration(
      graph, clustering::build_power_view(graph, cc), platform,
      feasible_block_duration(graph, platform));

  JointPlan plan;
  plan.view = view;
  for (const clustering::PowerBlock& b : view.blocks()) {
    const auto layers = graph.layers().subspan(b.begin, b.size());
    std::size_t best_gpu = 0;
    std::size_t best_cpu = 0;
    double best_energy = -1.0;
    for (std::size_t cpu = 0; cpu < platform.cpu_levels(); ++cpu) {
      for (std::size_t gpu = 0; gpu < platform.gpu_levels(); ++gpu) {
        const hw::BlockCost c =
            hw::analytic_block_cost(platform, layers, gpu, cpu);
        if (best_energy < 0.0 || c.energy_j < best_energy) {
          best_energy = c.energy_j;
          best_gpu = gpu;
          best_cpu = cpu;
        }
      }
    }
    plan.gpu_levels.push_back(best_gpu);
    plan.cpu_levels.push_back(best_cpu);
    plan.schedule.points.push_back({b.begin, best_gpu});
    plan.schedule.cpu_points.push_back({b.begin, best_cpu});
  }
  return plan;
}

BatchChoice choose_batch_size(
    const std::function<dnn::Graph(std::int64_t)>& build,
    std::span<const std::int64_t> candidates, const hw::Platform& platform,
    double max_pass_latency_s, const DatasetGenConfig& config) {
  if (!build || candidates.empty()) {
    throw std::invalid_argument("choose_batch_size: no candidates");
  }
  DatasetGenConfig cfg = config;
  if (cfg.cpu_level_for_labels == 0) {
    cfg.cpu_level_for_labels = platform.max_cpu_level();
  }

  BatchChoice best;
  for (std::int64_t batch : candidates) {
    if (batch <= 0) {
      throw std::invalid_argument("choose_batch_size: batch must be > 0");
    }
    const dnn::Graph graph = build(batch);
    const std::size_t cls = best_hyperparam_class(graph, platform, cfg);
    clustering::ClusteringConfig cc;
    cc.hyper = cfg.grid.at(cls);
    cc.distance = cfg.distance;
    const clustering::PowerView view = enforce_min_block_duration(
        graph, clustering::build_power_view(graph, cc), platform,
        feasible_block_duration(graph, platform));
    const ViewEvaluation ev = evaluate_view_oracle(
        graph, view, platform, cfg.cpu_level_for_labels);

    if (max_pass_latency_s > 0.0 && ev.time_s > max_pass_latency_s) {
      continue;
    }
    const double ee = static_cast<double>(batch) / ev.energy_j;
    if (best.batch == 0 || ee > best.ee_images_per_joule) {
      best = {batch, ee, ev.time_s, view.block_count()};
    }
  }
  if (best.batch == 0) {
    throw std::invalid_argument(
        "choose_batch_size: no candidate satisfies the latency budget");
  }
  return best;
}

}  // namespace powerlens::core
