// Dataset generator for the model training phase (paper section 2.2).
//
// Produces the paper's two dataset groups from randomly generated networks:
//   Dataset A — whole-network global features, labelled with the index of the
//     clustering-hyperparameter configuration (from a fixed grid) whose power
//     view yields the best energy efficiency on the target platform.
//   Dataset B — per-block global features, labelled with the GPU frequency
//     level that minimizes the block's energy ("each block in the power view
//     is deployed at all frequencies to select ... optimal energy
//     efficiency").
// Ground truth comes from the analytic cost model — the simulated analogue of
// the paper's exhaustive on-device frequency sweeps — and is therefore fully
// platform-specific, which is exactly what makes retargeting PowerLens to a
// new platform an automated dataset regeneration + retrain.
#pragma once

#include "clustering/cluster.hpp"
#include "dnn/random_gen.hpp"
#include "hw/cost_table.hpp"
#include "hw/platform.hpp"
#include "nn/trainer.hpp"
#include "util/thread_pool.hpp"

#include <cstdint>
#include <vector>

namespace powerlens::core {

// The hyperparameter grid the prediction model classifies over.
struct HyperparamGrid {
  std::vector<double> eps_values = {0.04, 0.07, 0.10, 0.15, 0.22, 0.32};
  std::vector<std::size_t> min_pts_values = {2, 3, 5, 8};

  std::size_t size() const noexcept {
    return eps_values.size() * min_pts_values.size();
  }
  clustering::ClusteringHyperparams at(std::size_t index) const;
  std::size_t index_of(const clustering::ClusteringHyperparams& hp) const;
};

struct DatasetGenConfig {
  std::size_t num_networks = 400;  // the paper used 8000; tests use fewer
  std::uint64_t seed = 42;
  dnn::RandomDnnConfig dnn_config;
  clustering::DistanceParams distance;
  HyperparamGrid grid;
  std::size_t cpu_level_for_labels = 0;  // set to max at generation time
  // Offline-phase parallelism. Network n is always generated from its own
  // RNG stream (split_seed(seed, n)), so the produced datasets are byte-
  // identical for every thread count, including 1.
  util::ParallelConfig parallel;
};

struct GeneratedDatasets {
  nn::Dataset dataset_a;  // network features -> hyperparameter class
  nn::Dataset dataset_b;  // block features -> optimal frequency level
  std::size_t networks_generated = 0;
  std::size_t blocks_generated = 0;
};

// Deployment-feasibility post-processing (paper section 2.1.3: "adjusting
// size, shape, or membership of clusters"): a power block whose execution
// takes less than `min_duration_s` cannot amortize a DVFS switch — the new
// frequency would not even settle before the next preset point. Such blocks
// are merged into their preceding neighbour (following for the first).
// Durations are evaluated analytically at the platform's middle frequency.
clustering::PowerView enforce_min_block_duration(
    const dnn::Graph& graph, const clustering::PowerView& view,
    const hw::Platform& platform, double min_duration_s);

// Memoized variant: block durations come from `costs` (which must cover the
// platform's maximum CPU level) instead of fresh analytic sweeps. This is
// the form every repeated caller uses — the graph-based overload above is a
// convenience wrapper that builds a one-plane table.
clustering::PowerView enforce_min_block_duration(
    const hw::CostTable& costs, const clustering::PowerView& view,
    const hw::Platform& platform, double min_duration_s);

// Feasibility horizon for one graph: a block must outlast 1.5x the full
// switch cost, and instrumentation stays at single-digit granularity — a
// block shorter than a tenth of the pass adds a switch without adding
// control authority.
double feasible_block_duration(const dnn::Graph& graph,
                               const hw::Platform& platform);
double feasible_block_duration(const hw::CostTable& costs,
                               const hw::Platform& platform);

// Steady-state cost of running one pass of `graph` under `view` with each
// block at its analytic-optimal frequency, including per-switch DVFS cost.
struct ViewEvaluation {
  double time_s = 0.0;
  double energy_j = 0.0;
  std::vector<std::size_t> block_levels;  // oracle level per block
};
ViewEvaluation evaluate_view_oracle(const dnn::Graph& graph,
                                    const clustering::PowerView& view,
                                    const hw::Platform& platform,
                                    std::size_t cpu_level);

// Memoized variant; `costs` must cover `cpu_level`.
ViewEvaluation evaluate_view_oracle(const hw::CostTable& costs,
                                    const clustering::PowerView& view,
                                    const hw::Platform& platform,
                                    std::size_t cpu_level);

// Selects the EE-optimal hyperparameter class for one graph by sweeping the
// grid: each candidate view's blocks get their analytic-optimal frequencies,
// and candidates are ranked by total energy including per-switch DVFS cost.
// Tie-breaking is fully deterministic (see the implementation): among
// near-optimal candidates, the finest view wins, and equal block counts
// resolve to the lower grid index.
std::size_t best_hyperparam_class(const dnn::Graph& graph,
                                  const hw::Platform& platform,
                                  const DatasetGenConfig& config);

// Memoized variant; `costs` must cover the platform's maximum CPU level and
// config.cpu_level_for_labels.
std::size_t best_hyperparam_class(const dnn::Graph& graph,
                                  const hw::CostTable& costs,
                                  const hw::Platform& platform,
                                  const DatasetGenConfig& config);

// Full generation pass (Figure 2, "dataset generator"). Networks are
// labelled in parallel on config.parallel threads; each network is one task
// with its own RNG stream and its own CostTable, and rows are concatenated
// in network order, so the output is identical for every thread count.
GeneratedDatasets generate_datasets(const hw::Platform& platform,
                                    const DatasetGenConfig& config);

}  // namespace powerlens::core
