// PowerLens: the adaptive DVFS framework (paper section 2).
//
// Offline pipeline (Figure 2):
//   train():    random-network dataset generation -> Dataset A/B -> train the
//               clustering-hyperparameter prediction model and the target-
//               frequency decision model (80/10/10 protocol). Fully
//               automated, which is the paper's platform-portability story:
//               retargeting = regenerate + retrain, no human intervention.
//   optimize(): for a concrete DNN, 1) predict clustering hyperparameters
//               from global features, 2) cluster layers into power blocks
//               (Algorithm 1), 3) predict each block's target frequency,
//               4) emit the preset DVFS instrumentation schedule that the
//               runtime engine applies at block boundaries.
#pragma once

#include "clustering/cluster.hpp"
#include "core/dataset_gen.hpp"
#include "features/global.hpp"
#include "hw/analytic.hpp"
#include "hw/governor.hpp"
#include "hw/platform.hpp"
#include "linalg/stats.hpp"
#include "nn/mlp.hpp"
#include "nn/trainer.hpp"

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace powerlens::core {

// A trained predictor bundling input scalers with the two-stage MLP.
class PredictionModel {
 public:
  struct FitSummary {
    double test_accuracy = 0.0;
    double test_mean_level_error = 0.0;  // classes are ordered for Dataset B
    nn::TrainReport report;
  };

  // Trains on `data` with an internal 80/10/10 split. `num_classes` is the
  // label-space size; hidden sizes come from `hidden`.
  FitSummary fit(const nn::Dataset& data, std::size_t num_classes,
                 const nn::TrainConfig& train_config, std::uint64_t seed,
                 std::size_t hidden = 64);

  bool trained() const noexcept { return mlp_.has_value(); }

  // Predicted class for one feature bundle. Throws std::logic_error if not
  // trained. When `ws` is non-null, the scaled feature rows and every MLP
  // activation are leased from it (the serving hot path's per-worker
  // workspace) instead of heap-allocated.
  int predict(const features::GlobalFeatures& features,
              linalg::Workspace* ws = nullptr) const;

  // Text serialization of a trained predictor (scalers + MLP). save()
  // throws std::logic_error before fit().
  void save(std::ostream& os) const;
  static PredictionModel load(std::istream& is);

  // Incremental online refit: continues training the MLP from its current
  // weights on freshly harvested rows, with the input scalers FROZEN (they
  // summarize the offline distribution; refitting them on a narrow online
  // slice would silently re-scale every future feature). Deterministic for
  // a given (model state, rows, config, seed). Throws std::logic_error
  // before fit().
  nn::TrainReport refit(const nn::Dataset& rows,
                        const nn::TrainConfig& config, std::uint64_t seed);

 private:
  linalg::StandardScaler scaler_structural_;
  linalg::StandardScaler scaler_statistics_;
  std::optional<nn::TwoStageMlp> mlp_;
};

struct PowerLensConfig {
  DatasetGenConfig dataset;
  nn::TrainConfig train_hyper;     // clustering-hyperparameter model
  nn::TrainConfig train_decision;  // target-frequency decision model
  std::size_t hidden_units = 64;
  std::uint64_t model_seed = 11;
  // Offline-phase thread count; propagated at construction into any of the
  // sub-configs above that are still on "auto" (num_threads == 0). Results
  // are invariant to the value — it only changes wall-clock.
  util::ParallelConfig parallel;
};

struct TrainingSummary {
  std::size_t networks = 0;
  std::size_t blocks = 0;
  PredictionModel::FitSummary hyper_model;
  PredictionModel::FitSummary decision_model;
};

struct OptimizationPlan {
  clustering::ClusteringHyperparams hyper;
  clustering::PowerView view;
  std::vector<std::size_t> block_levels;  // one GPU level per block
  hw::PresetSchedule schedule;
  // Static per-pass cost prediction for `schedule` (hw::schedule_cost from
  // MAXN initial levels, the serving boot state): the lag-free time/energy
  // the plan promises per forward pass. The serving layer scores simulated
  // actuals against these (obs::Residuals); 0 means "not computed" (plans
  // assembled by hand).
  double predicted_pass_time_s = 0.0;
  double predicted_pass_energy_j = 0.0;

  // Field-exact equality — the PlanCache's hit-equals-fresh-plan invariant.
  bool operator==(const OptimizationPlan&) const noexcept = default;
};

// Live-signal fusion inputs for one online re-plan (serve/adapt): the
// multiplicative corrections the residual loop learned for a (policy,
// model) key, plus the thermal frequency headroom observed this epoch.
struct AdaptSignals {
  // observed/predicted ratios (1 + residual EWMA); must be finite and
  // positive. They rescale the analytic cost table before levels re-pick,
  // and they correct the re-planned prediction itself.
  double time_scale = 1.0;
  double energy_scale = 1.0;
  // Highest GPU level the re-plan may schedule (thermal cap); SIZE_MAX =
  // unconstrained. Clamped to the platform ladder.
  std::size_t gpu_level_cap = std::numeric_limits<std::size_t>::max();
  // The serving engine's inter-pass idle gap: observed request time includes
  // it, per-pass predictions do not, so the time correction must spill onto
  // it for the corrected prediction to collapse a total-time residual.
  double inter_pass_gap_s = 0.0;
};

// One drifting plan to recompute: the static plan fused with live signals.
struct ReplanRequest {
  const dnn::Graph* graph = nullptr;
  const OptimizationPlan* base = nullptr;  // the plan being corrected
  AdaptSignals signals;
  // Optional pre-extracted per-layer cost features for `graph` on the
  // engine's platform (hw::CostFeatures::extract). The adaptation loop
  // re-plans the same models every epoch; passing the cached features skips
  // the per-layer model re-derivation in the rescaled cost-table refill.
  // Null means extract on the fly — results are bitwise identical either
  // way.
  const hw::CostFeatures* cost_features = nullptr;
};

class PowerLens {
 public:
  explicit PowerLens(const hw::Platform& platform, PowerLensConfig config = {});

  // Full offline model-training phase. Must be called before optimize().
  TrainingSummary train();

  bool trained() const noexcept;

  // Model-driven optimization of one DNN (workflow steps 1-5 of section
  // 2.1.1). Throws std::logic_error before train(). A non-null `ws` is
  // threaded through every dense computation (feature scaling, MLP
  // inference, the clustering distance pipeline), so a warmed-up per-worker
  // workspace makes repeated plan computation allocation-free in the matrix
  // hot loops.
  OptimizationPlan optimize(const dnn::Graph& graph,
                            linalg::Workspace* ws = nullptr) const;

  // Batched optimize(): plans many graphs in one call, pushing every
  // graph's clustering covariance through ONE shared eigendecomposition
  // batch (clustering::power_distances_batch_into) instead of one
  // decomposition per graph. plans[i] is bitwise identical to
  // optimize(*graphs[i], ws) — batching changes wall-clock, never results
  // (test-asserted; the serving layer's coalesced plan-cache misses depend
  // on it). Throws std::logic_error before train().
  std::vector<OptimizationPlan> optimize_batch(
      std::span<const dnn::Graph* const> graphs,
      linalg::Workspace* ws = nullptr) const;

  // Analytic upper bound: the same pipeline but with exhaustive-sweep ground
  // truth in place of both models (dataset-generation labelling rules).
  OptimizationPlan optimize_oracle(const dnn::Graph& graph) const;

  // Online re-planning (the serving adaptation loop): for each request,
  // keeps the base plan's power-view partition (re-clustering online would
  // discard the offline similarity structure for no observed reason — the
  // drift signal is about COST, not block shape) and re-picks each block's
  // GPU level as the energy argmin of the analytic cost table rescaled by
  // the request's observed/predicted correction factors, capped at
  // signals.gpu_level_cap. The emitted plan's predicted per-pass cost is
  // the corrected prediction (new schedule's analytic cost x the scale
  // factors, gap spill included), so a request served by the re-plan under
  // unchanged fault pressure scores a near-zero residual. Analytic-table
  // math only — no MLP inference, no eigendecomposition — so results are
  // identical on every kernel dispatch path and need no trained models.
  // Throws std::invalid_argument on null graph/base or bad signals.
  std::vector<OptimizationPlan> replan_batch(
      std::span<const ReplanRequest> requests) const;

  // Background-retrain entry point: incremental refit of the per-block
  // frequency decision model on rows harvested from served traffic (frozen
  // scalers, weights continue — see PredictionModel::refit). Throws
  // std::logic_error before train().
  nn::TrainReport refit_decision(const nn::Dataset& rows,
                                 const nn::TrainConfig& config,
                                 std::uint64_t seed);

  // Persists / restores the trained model pair, so deployments skip the
  // offline phase. Throws std::logic_error if untrained /
  // std::runtime_error on malformed files.
  void save_models(const std::string& path) const;
  void load_models(const std::string& path);

  // Frequency decisions + schedule for an externally supplied power view;
  // shared by the P-R / P-N ablations so only the partitioning differs.
  OptimizationPlan plan_for_view(const dnn::Graph& graph,
                                 clustering::PowerView view,
                                 bool use_oracle = false,
                                 linalg::Workspace* ws = nullptr) const;

  const hw::Platform& platform() const noexcept { return *platform_; }
  const PowerLensConfig& config() const noexcept { return config_; }

 private:
  std::size_t decide_block_level(const dnn::Graph& graph,
                                 const clustering::PowerBlock& block,
                                 const hw::CostTable* oracle_costs,
                                 linalg::Workspace* ws) const;

  const hw::Platform* platform_;  // non-owning
  PowerLensConfig config_;
  PredictionModel hyper_model_;
  PredictionModel decision_model_;
};

}  // namespace powerlens::core
