// Energy-efficiency metrics (paper equation 1 and the comparison columns of
// Tables 1-2 / Figure 5).
#pragma once

#include "hw/sim_engine.hpp"

namespace powerlens::core {

// EE_model = FPS / P_bar = images / E  (images per joule), eq. (1).
double energy_efficiency(const hw::ExecutionResult& result);

// Relative EE gain of `ours` over `baseline`:
// (EE_ours - EE_base) / EE_base. Matches the Table 1 footnote definition.
double ee_gain(const hw::ExecutionResult& ours,
               const hw::ExecutionResult& baseline);
double ee_gain(double ee_ours, double ee_baseline);

// Relative energy reduction of `ours` vs `baseline` (positive = less
// energy), as reported for Figure 5.
double energy_reduction(const hw::ExecutionResult& ours,
                        const hw::ExecutionResult& baseline);

// Relative time increase of `ours` vs `baseline` (positive = slower).
double time_increase(const hw::ExecutionResult& ours,
                     const hw::ExecutionResult& baseline);

}  // namespace powerlens::core
