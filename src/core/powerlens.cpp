#include "core/powerlens.hpp"

#include "features/depthwise.hpp"
#include "hw/analytic.hpp"
#include "hw/cost_table.hpp"
#include "nn/serialize.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include <chrono>
#include <cmath>
#include <fstream>
#include <locale>
#include <stdexcept>

namespace powerlens::core {

namespace {

linalg::Matrix row_matrix(const std::vector<double>& v) {
  linalg::Matrix m(1, v.size());
  for (std::size_t c = 0; c < v.size(); ++c) m(0, c) = v[c];
  return m;
}

// Wall-clock phase timer feeding a powerlens_plan_phase_*_ms histogram on
// destruction. Callers hoist the histogram reference into a function-local
// static so the hot path never touches the registry mutex.
class PhaseTimer {
 public:
  explicit PhaseTimer(obs::Histogram& hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    hist_.observe(std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start_)
                      .count());
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  obs::Histogram& hist_;
  std::chrono::steady_clock::time_point start_;
};

obs::Histogram& phase_predict_hist() {
  static obs::Histogram& h = obs::global_metrics().histogram(
      "powerlens_plan_phase_predict_ms", obs::default_milliseconds_buckets(),
      "plan compute: global features + hyperparameter prediction");
  return h;
}
obs::Histogram& phase_cost_table_hist() {
  static obs::Histogram& h = obs::global_metrics().histogram(
      "powerlens_plan_phase_cost_table_ms",
      obs::default_milliseconds_buckets(),
      "plan compute: analytic cost-table fill");
  return h;
}
obs::Histogram& phase_distance_hist() {
  static obs::Histogram& h = obs::global_metrics().histogram(
      "powerlens_plan_phase_distance_ms", obs::default_milliseconds_buckets(),
      "plan compute: depthwise features + power-distance blend");
  return h;
}
obs::Histogram& phase_cluster_hist() {
  static obs::Histogram& h = obs::global_metrics().histogram(
      "powerlens_plan_phase_cluster_ms", obs::default_milliseconds_buckets(),
      "plan compute: DBSCAN + contiguity and feasibility postprocess");
  return h;
}
obs::Histogram& phase_decide_hist() {
  static obs::Histogram& h = obs::global_metrics().histogram(
      "powerlens_plan_phase_decide_ms", obs::default_milliseconds_buckets(),
      "plan compute: per-block frequency decisions + schedule emission");
  return h;
}

// Fills the plan's static per-pass cost prediction from the emitted
// schedule (MAXN initial levels — the serving engine's boot state).
void predict_plan_cost(const hw::Platform& platform, const dnn::Graph& graph,
                       OptimizationPlan& plan) {
  const hw::BlockCost cost =
      hw::schedule_cost(platform, graph.layers(), plan.schedule,
                        platform.max_gpu_level(), platform.max_cpu_level());
  plan.predicted_pass_time_s = cost.time_s;
  plan.predicted_pass_energy_j = cost.energy_j;
}

}  // namespace

PredictionModel::FitSummary PredictionModel::fit(
    const nn::Dataset& data, std::size_t num_classes,
    const nn::TrainConfig& train_config, std::uint64_t seed,
    std::size_t hidden) {
  data.validate();
  if (data.size() < 10) {
    throw std::invalid_argument("PredictionModel::fit: dataset too small");
  }

  scaler_structural_.fit(data.structural);
  scaler_statistics_.fit(data.statistics);
  nn::Dataset scaled{scaler_structural_.transform(data.structural),
                     scaler_statistics_.transform(data.statistics),
                     data.labels};

  const nn::DatasetSplit split = nn::split_dataset(scaled, seed);

  nn::TwoStageMlpConfig mc;
  mc.structural_dim = data.structural.cols();
  mc.statistics_dim = data.statistics.cols();
  mc.hidden1 = hidden;
  mc.hidden2 = hidden;
  mc.hidden3 = hidden;
  mc.num_classes = num_classes;
  mc.seed = seed;
  mlp_.emplace(mc);

  FitSummary s;
  s.report = nn::train(*mlp_, split.train, split.val, train_config);
  s.test_accuracy = nn::accuracy(*mlp_, split.test);
  s.test_mean_level_error = nn::mean_level_error(*mlp_, split.test);
  return s;
}

int PredictionModel::predict(const features::GlobalFeatures& features,
                             linalg::Workspace* ws) const {
  if (!trained()) {
    throw std::logic_error("PredictionModel: predict before fit");
  }
  if (ws == nullptr) {
    const linalg::Matrix xs =
        scaler_structural_.transform(row_matrix(features.structural));
    const linalg::Matrix xt =
        scaler_statistics_.transform(row_matrix(features.statistics));
    return mlp_->predict(xs, xt).front();
  }
  // Workspace path: lease the two feature rows, scale them in place
  // (transform_into is elementwise, so aliasing input and output is fine),
  // and run the single-sample MLP forward on leased activations.
  linalg::Workspace::Lease xs = ws->lease(1, features.structural.size());
  linalg::Workspace::Lease xt = ws->lease(1, features.statistics.size());
  for (std::size_t c = 0; c < features.structural.size(); ++c) {
    (*xs)(0, c) = features.structural[c];
  }
  for (std::size_t c = 0; c < features.statistics.size(); ++c) {
    (*xt)(0, c) = features.statistics[c];
  }
  scaler_structural_.transform_into(*xs, *xs);
  scaler_statistics_.transform_into(*xt, *xt);
  return mlp_->predict_one(*xs, *xt, *ws);
}

void PredictionModel::save(std::ostream& os) const {
  if (!trained()) {
    throw std::logic_error("PredictionModel: save before fit");
  }
  scaler_structural_.save(os);
  scaler_statistics_.save(os);
  mlp_->save(os);
}

nn::TrainReport PredictionModel::refit(const nn::Dataset& rows,
                                       const nn::TrainConfig& config,
                                       std::uint64_t seed) {
  if (!trained()) {
    throw std::logic_error("PredictionModel: refit before fit");
  }
  rows.validate();
  const nn::Dataset scaled{scaler_structural_.transform(rows.structural),
                           scaler_statistics_.transform(rows.statistics),
                           rows.labels};
  return nn::refit(*mlp_, scaled, config, seed);
}

PredictionModel PredictionModel::load(std::istream& is) {
  PredictionModel m;
  m.scaler_structural_ = linalg::StandardScaler::load(is);
  m.scaler_statistics_ = linalg::StandardScaler::load(is);
  m.mlp_.emplace(nn::TwoStageMlp::load(is));
  return m;
}

PowerLens::PowerLens(const hw::Platform& platform, PowerLensConfig config)
    : platform_(&platform), config_(std::move(config)) {
  platform.validate();
  if (config_.dataset.cpu_level_for_labels == 0) {
    config_.dataset.cpu_level_for_labels = platform.max_cpu_level();
  }
  // One knob drives the whole offline phase unless a sub-config overrides.
  if (config_.dataset.parallel.num_threads == 0) {
    config_.dataset.parallel = config_.parallel;
  }
  if (config_.train_hyper.parallel.num_threads == 0) {
    config_.train_hyper.parallel = config_.parallel;
  }
  if (config_.train_decision.parallel.num_threads == 0) {
    config_.train_decision.parallel = config_.parallel;
  }
}

bool PowerLens::trained() const noexcept {
  return hyper_model_.trained() && decision_model_.trained();
}

TrainingSummary PowerLens::train() {
  obs::TraceWriter& tw = obs::default_trace();
  obs::ScopedSpan train_span(tw, "powerlens_train", "pipeline");
  const GeneratedDatasets data = generate_datasets(*platform_, config_.dataset);

  TrainingSummary s;
  s.networks = data.networks_generated;
  s.blocks = data.blocks_generated;
  {
    obs::ScopedSpan span(tw, "fit_hyper_model", "pipeline");
    s.hyper_model =
        hyper_model_.fit(data.dataset_a, config_.dataset.grid.size(),
                         config_.train_hyper, config_.model_seed,
                         config_.hidden_units);
  }
  {
    obs::ScopedSpan span(tw, "fit_decision_model", "pipeline");
    s.decision_model =
        decision_model_.fit(data.dataset_b, platform_->gpu_levels(),
                            config_.train_decision, config_.model_seed + 1,
                            config_.hidden_units);
  }
  obs::log_info(
      "powerlens", "offline training complete",
      {{"networks", static_cast<double>(s.networks)},
       {"blocks", static_cast<double>(s.blocks)},
       {"hyper_test_acc", s.hyper_model.test_accuracy},
       {"decision_test_acc", s.decision_model.test_accuracy}});
  return s;
}

std::size_t PowerLens::decide_block_level(const dnn::Graph& graph,
                                          const clustering::PowerBlock& block,
                                          const hw::CostTable* oracle_costs,
                                          linalg::Workspace* ws) const {
  if (oracle_costs != nullptr) {
    return oracle_costs->optimal_gpu_level(block.begin, block.end,
                                           config_.dataset.cpu_level_for_labels);
  }
  const features::GlobalFeatures f =
      features::GlobalFeatureExtractor::extract(graph, block.begin,
                                                block.end);
  const int level = decision_model_.predict(f, ws);
  if (level < 0 || static_cast<std::size_t>(level) >= platform_->gpu_levels()) {
    throw std::logic_error("PowerLens: decision model emitted a bad level");
  }
  return static_cast<std::size_t>(level);
}

OptimizationPlan PowerLens::plan_for_view(const dnn::Graph& graph,
                                          clustering::PowerView view,
                                          bool use_oracle,
                                          linalg::Workspace* ws) const {
  if (!use_oracle && !trained()) {
    throw std::logic_error("PowerLens: optimize before train");
  }
  if (view.num_layers() != graph.size()) {
    throw std::invalid_argument("PowerLens: view does not match graph");
  }
  // The oracle path sweeps the GPU ladder once per block; memoize the layer
  // costs once for the whole graph instead of per (block, level) pair.
  std::optional<hw::CostTable> costs;
  if (use_oracle) {
    const std::size_t cpu_levels[] = {config_.dataset.cpu_level_for_labels};
    costs.emplace(*platform_, graph.layers(), cpu_levels);
  }
  OptimizationPlan plan;
  plan.view = std::move(view);
  for (const clustering::PowerBlock& b : plan.view.blocks()) {
    const std::size_t level =
        decide_block_level(graph, b, costs ? &*costs : nullptr, ws);
    plan.block_levels.push_back(level);
    plan.schedule.points.push_back({b.begin, level});
  }
  predict_plan_cost(*platform_, graph, plan);
  return plan;
}

OptimizationPlan PowerLens::optimize(const dnn::Graph& graph,
                                     linalg::Workspace* ws) const {
  if (!trained()) {
    throw std::logic_error("PowerLens: optimize before train");
  }
  obs::TraceWriter& tw = obs::default_trace();
  obs::ScopedSpan opt_span(
      tw, "powerlens_optimize", "pipeline",
      {obs::TraceArg::num("layers", static_cast<double>(graph.size()))});

  // Step 1: predict clustering hyperparameters from global features.
  int cls = 0;
  {
    obs::ScopedSpan span(tw, "predict_hyper", "pipeline");
    PhaseTimer timer(phase_predict_hist());
    const features::GlobalFeatures net_features =
        features::GlobalFeatureExtractor::extract(graph);
    cls = hyper_model_.predict(net_features, ws);
  }
  const clustering::ClusteringHyperparams hp =
      config_.dataset.grid.at(static_cast<std::size_t>(cls));

  // Steps 2-3: power behavior similarity clustering into a power view,
  // post-processed to deployment-feasible block durations. Feasibility only
  // reads the (mid GPU, max CPU) plane, so a one-plane table suffices.
  // build_power_view is inlined into its public pieces (feature extraction
  // + distance blend, then DBSCAN) so each phase lands in its own
  // powerlens_plan_phase_*_ms histogram. eps is already predicted here, so
  // the distance pipeline emits the ε-adjacency inside its own sweeps and
  // DBSCAN runs on CSR neighbor lists — same labels, same view, no matrix
  // rescans. A local workspace stands in when the caller passed none
  // (buffer provenance never changes values).
  clustering::ClusteringConfig cc;
  cc.hyper = hp;
  cc.distance = config_.dataset.distance;
  linalg::Workspace local_ws;
  linalg::Workspace& plan_ws = ws != nullptr ? *ws : local_ws;
  clustering::PowerView view = [&] {
    obs::ScopedSpan span(tw, "cluster_and_postprocess", "pipeline");
    const std::size_t cpu_levels[] = {platform_->max_cpu_level()};
    std::optional<hw::CostTable> costs;
    {
      PhaseTimer timer(phase_cost_table_hist());
      costs.emplace(*platform_, graph.layers(), cpu_levels);
    }
    const linalg::Matrix table =
        features::DepthwiseFeatureExtractor::extract(graph);
    linalg::Workspace::Lease dist = plan_ws.lease(0, 0);
    clustering::EpsAdjacency adj;
    {
      PhaseTimer timer(phase_distance_hist());
      clustering::power_distances_adj_into(table, cc.distance, hp.eps,
                                           plan_ws, *dist, adj);
    }
    PhaseTimer timer(phase_cluster_hist());
    return enforce_min_block_duration(
        *costs,
        clustering::build_power_view_from_adjacency(*dist, adj, cc.hyper),
        *platform_, feasible_block_duration(*costs, *platform_));
  }();

  // Steps 4-5: per-block frequency decisions and the preset schedule.
  obs::ScopedSpan decide_span(tw, "decide_levels", "pipeline");
  OptimizationPlan plan = [&] {
    PhaseTimer timer(phase_decide_hist());
    return plan_for_view(graph, std::move(view), false, ws);
  }();
  plan.hyper = hp;
  obs::log_debug(
      "powerlens", "optimized graph",
      {{"layers", static_cast<double>(graph.size())},
       {"blocks", static_cast<double>(plan.view.block_count())}});
  return plan;
}

std::vector<OptimizationPlan> PowerLens::optimize_batch(
    std::span<const dnn::Graph* const> graphs, linalg::Workspace* ws) const {
  if (!trained()) {
    throw std::logic_error("PowerLens: optimize before train");
  }
  std::vector<OptimizationPlan> plans;
  plans.reserve(graphs.size());
  if (graphs.empty()) return plans;

  obs::TraceWriter& tw = obs::default_trace();
  obs::ScopedSpan opt_span(
      tw, "powerlens_optimize_batch", "pipeline",
      {obs::TraceArg::num("graphs", static_cast<double>(graphs.size()))});

  // The distance batch needs a workspace even on the heap path; a local one
  // only changes buffer provenance, never values.
  linalg::Workspace local_ws;
  linalg::Workspace& batch_ws = ws != nullptr ? *ws : local_ws;

  // Phase 1, per graph: predicted clustering hyperparameters and the
  // unscaled depthwise feature table (optimize() steps 1-2a).
  std::vector<clustering::ClusteringHyperparams> hps;
  hps.reserve(graphs.size());
  std::vector<linalg::Matrix> tables;
  tables.reserve(graphs.size());
  for (const dnn::Graph* graph : graphs) {
    PhaseTimer timer(phase_predict_hist());
    const features::GlobalFeatures net_features =
        features::GlobalFeatureExtractor::extract(*graph);
    const int cls = hyper_model_.predict(net_features, ws);
    hps.push_back(config_.dataset.grid.at(static_cast<std::size_t>(cls)));
    tables.push_back(features::DepthwiseFeatureExtractor::extract(*graph));
  }

  // Phase 2: every graph's power-distance matrix through one shared
  // eigendecomposition batch, each emitting its ε-adjacency (per-graph eps
  // from phase 1's predictions) inside the distance sweeps.
  std::vector<const linalg::Matrix*> table_ptrs;
  table_ptrs.reserve(tables.size());
  for (const linalg::Matrix& t : tables) table_ptrs.push_back(&t);
  std::vector<linalg::Workspace::Lease> dist_leases;
  dist_leases.reserve(graphs.size());
  std::vector<linalg::Matrix*> dist_ptrs;
  dist_ptrs.reserve(graphs.size());
  std::vector<double> eps;
  eps.reserve(graphs.size());
  std::vector<clustering::EpsAdjacency> adjs(graphs.size());
  std::vector<clustering::EpsAdjacency*> adj_ptrs;
  adj_ptrs.reserve(graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    dist_leases.push_back(batch_ws.lease(0, 0));
    dist_ptrs.push_back(&*dist_leases.back());
    eps.push_back(hps[i].eps);
    adj_ptrs.push_back(&adjs[i]);
  }
  {
    obs::ScopedSpan span(tw, "batched_power_distances", "pipeline");
    const auto t0 = std::chrono::steady_clock::now();
    clustering::power_distances_adj_batch_into(
        table_ptrs, config_.dataset.distance, eps, batch_ws, dist_ptrs,
        adj_ptrs);
    // Amortised per-plan share of the shared sweep, observed once per
    // graph — same discipline as powerlens_serve_plan_compute_ms.
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count() /
                      static_cast<double>(graphs.size());
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      phase_distance_hist().observe(ms);
    }
  }

  // Phase 3, per graph: clustering, feasibility post-processing, per-block
  // frequency decisions (optimize() steps 2b-5, same order per graph).
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const dnn::Graph& graph = *graphs[i];
    const std::size_t cpu_levels[] = {platform_->max_cpu_level()};
    std::optional<hw::CostTable> costs;
    {
      PhaseTimer timer(phase_cost_table_hist());
      costs.emplace(*platform_, graph.layers(), cpu_levels);
    }
    clustering::PowerView view = [&] {
      PhaseTimer timer(phase_cluster_hist());
      return enforce_min_block_duration(
          *costs,
          clustering::build_power_view_from_adjacency(*dist_ptrs[i], adjs[i],
                                                      hps[i]),
          *platform_, feasible_block_duration(*costs, *platform_));
    }();
    OptimizationPlan plan = [&] {
      PhaseTimer timer(phase_decide_hist());
      return plan_for_view(graph, std::move(view), false, ws);
    }();
    plan.hyper = hps[i];
    plans.push_back(std::move(plan));
  }
  obs::log_debug("powerlens", "optimized graph batch",
                 {{"graphs", static_cast<double>(plans.size())}});
  return plans;
}

OptimizationPlan PowerLens::optimize_oracle(const dnn::Graph& graph) const {
  // The exhaustive-sweep pipeline touches every (block, gpu level) pair many
  // times over; one CostTable covers the hyperparameter sweep, feasibility
  // enforcement, and the per-block ladder scans.
  std::vector<std::size_t> cpu_levels = {platform_->max_cpu_level()};
  if (config_.dataset.cpu_level_for_labels != platform_->max_cpu_level()) {
    cpu_levels.push_back(config_.dataset.cpu_level_for_labels);
  }
  const hw::CostTable costs(*platform_, graph.layers(), cpu_levels);

  const std::size_t cls =
      best_hyperparam_class(graph, costs, *platform_, config_.dataset);
  const clustering::ClusteringHyperparams hp = config_.dataset.grid.at(cls);

  clustering::ClusteringConfig cc;
  cc.hyper = hp;
  cc.distance = config_.dataset.distance;
  clustering::PowerView view = enforce_min_block_duration(
      costs, clustering::build_power_view(graph, cc), *platform_,
      feasible_block_duration(costs, *platform_));

  OptimizationPlan plan;
  plan.view = std::move(view);
  for (const clustering::PowerBlock& b : plan.view.blocks()) {
    const std::size_t level = decide_block_level(graph, b, &costs, nullptr);
    plan.block_levels.push_back(level);
    plan.schedule.points.push_back({b.begin, level});
  }
  plan.hyper = hp;
  predict_plan_cost(*platform_, graph, plan);
  return plan;
}

std::vector<OptimizationPlan> PowerLens::replan_batch(
    std::span<const ReplanRequest> requests) const {
  std::vector<OptimizationPlan> plans;
  plans.reserve(requests.size());
  if (requests.empty()) return plans;

  obs::TraceWriter& tw = obs::default_trace();
  obs::ScopedSpan span(
      tw, "powerlens_replan_batch", "pipeline",
      {obs::TraceArg::num("plans", static_cast<double>(requests.size()))});

  for (const ReplanRequest& req : requests) {
    if (req.graph == nullptr || req.base == nullptr) {
      throw std::invalid_argument("PowerLens: replan with null graph or plan");
    }
    const AdaptSignals& sig = req.signals;
    if (!std::isfinite(sig.time_scale) || sig.time_scale <= 0.0 ||
        !std::isfinite(sig.energy_scale) || sig.energy_scale <= 0.0 ||
        !std::isfinite(sig.inter_pass_gap_s) || sig.inter_pass_gap_s < 0.0) {
      throw std::invalid_argument("PowerLens: bad adapt signals");
    }
    if (req.base->view.num_layers() != req.graph->size()) {
      throw std::invalid_argument("PowerLens: replan base does not match graph");
    }

    // Rescaled analytic plane at the labelling CPU level — same operating
    // point the offline labels were swept at, so an all-ones correction
    // reproduces the oracle's level choices exactly.
    const std::size_t cpu_level = config_.dataset.cpu_level_for_labels;
    const std::size_t cpu_levels[] = {cpu_level};
    // Epoch-over-epoch refills share the caller's cached per-layer features
    // when provided; the layer-span constructor is extract-then-fill with
    // the same features, so both branches produce identical tables.
    const hw::CostTable costs =
        (req.cost_features != nullptr
             ? hw::CostTable(*platform_, *req.cost_features, cpu_levels)
             : hw::CostTable(*platform_, req.graph->layers(), cpu_levels))
            .scaled(sig.time_scale, sig.energy_scale);

    OptimizationPlan plan;
    plan.hyper = req.base->hyper;
    plan.view = req.base->view;  // partition preserved; levels re-picked
    for (const clustering::PowerBlock& b : plan.view.blocks()) {
      const std::size_t level = costs.optimal_gpu_level(
          b.begin, b.end, cpu_level, sig.gpu_level_cap);
      plan.block_levels.push_back(level);
      plan.schedule.points.push_back({b.begin, level});
    }

    // Corrected prediction: the new schedule's raw analytic cost, scaled by
    // the learned correction. Observed request time is
    // passes * (actual_pass + gap) with the gap an uncorrectable idle, so
    // the time correction spills its excess onto the gap:
    //   passes * (raw*s + gap*(s-1) + gap) = s * passes * (raw + gap),
    // which is exactly (1 + ewma) x the uncorrected total — the residual
    // the EWMA measured collapses to ~0 under unchanged fault pressure.
    predict_plan_cost(*platform_, *req.graph, plan);
    plan.predicted_pass_time_s =
        plan.predicted_pass_time_s * sig.time_scale +
        sig.inter_pass_gap_s * (sig.time_scale - 1.0);
    plan.predicted_pass_energy_j *= sig.energy_scale;
    plans.push_back(std::move(plan));
  }
  obs::log_debug("powerlens", "replanned batch",
                 {{"plans", static_cast<double>(plans.size())}});
  return plans;
}

nn::TrainReport PowerLens::refit_decision(const nn::Dataset& rows,
                                          const nn::TrainConfig& config,
                                          std::uint64_t seed) {
  if (!trained()) {
    throw std::logic_error("PowerLens: refit before train");
  }
  return decision_model_.refit(rows, config, seed);
}

void PowerLens::save_models(const std::string& path) const {
  if (!trained()) {
    throw std::logic_error("PowerLens: save_models before train");
  }
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("PowerLens: cannot open '" + path +
                             "' for writing");
  }
  // The bundle format is locale-independent: a freshly opened stream
  // inherits the process-global locale, so pin the classic one before any
  // numeric output (the nn::serialize primitives pin their own streams too,
  // but the header line is written here).
  os.imbue(std::locale::classic());
  os << "powerlens-models 1 " << platform_->name << "\n";
  hyper_model_.save(os);
  decision_model_.save(os);
  if (!os) {
    throw std::runtime_error("PowerLens: write to '" + path + "' failed");
  }
}

void PowerLens::load_models(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("PowerLens: cannot open '" + path + "'");
  }
  is.imbue(std::locale::classic());
  std::string magic;
  int version = 0;
  std::string platform_name;
  if (!(is >> magic >> version >> platform_name) ||
      magic != "powerlens-models" || version != 1) {
    throw std::runtime_error("PowerLens: '" + path +
                             "' is not a model bundle");
  }
  if (platform_name != platform_->name) {
    throw std::runtime_error(
        "PowerLens: model bundle was trained for platform '" + platform_name +
        "', not '" + platform_->name + "'");
  }
  hyper_model_ = PredictionModel::load(is);
  decision_model_ = PredictionModel::load(is);
}

}  // namespace powerlens::core
