#include "core/ablation.hpp"

#include <algorithm>
#include <random>
#include <set>
#include <stdexcept>

namespace powerlens::core {

clustering::PowerView random_power_view(std::size_t num_layers,
                                        std::size_t num_blocks,
                                        std::uint64_t seed) {
  if (num_blocks == 0 || num_blocks > num_layers) {
    throw std::invalid_argument("random_power_view: bad block count");
  }
  std::mt19937_64 rng(seed);
  // Draw num_blocks - 1 distinct cut points in (0, num_layers).
  std::set<std::size_t> cuts;
  std::uniform_int_distribution<std::size_t> dist(1, num_layers - 1);
  while (cuts.size() < num_blocks - 1) cuts.insert(dist(rng));

  std::vector<clustering::PowerBlock> blocks;
  std::size_t begin = 0;
  for (std::size_t cut : cuts) {
    blocks.push_back({begin, cut});
    begin = cut;
  }
  blocks.push_back({begin, num_layers});
  return clustering::PowerView(std::move(blocks), num_layers);
}

clustering::PowerView single_block_view(std::size_t num_layers) {
  if (num_layers == 0) {
    throw std::invalid_argument("single_block_view: empty network");
  }
  return clustering::PowerView({{0, num_layers}}, num_layers);
}

}  // namespace powerlens::core
