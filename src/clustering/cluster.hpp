// End-to-end power behavior similarity clustering (Algorithm 1).
//
// Chains: z-score scaling of the depthwise feature table -> regularized
// Mahalanobis power-distance matrix -> DBSCAN -> contiguity post-processing
// -> PowerView.
#pragma once

#include "clustering/dbscan.hpp"
#include "clustering/distance.hpp"
#include "clustering/postprocess.hpp"
#include "clustering/power_view.hpp"
#include "dnn/graph.hpp"
#include "linalg/workspace.hpp"

namespace powerlens::clustering {

// The hyperparameters the clustering-hyperparameter prediction model chooses
// per network (paper Figure 3): DBSCAN's neighborhood radius and minimum
// operator count.
struct ClusteringHyperparams {
  double eps = 0.2;
  std::size_t min_pts = 3;

  bool operator==(const ClusteringHyperparams&) const noexcept = default;
};

struct ClusteringConfig {
  ClusteringHyperparams hyper;
  DistanceParams distance;  // alpha, lambda, metric
};

// Runs Algorithm 1 on a graph: extracts + scales depthwise features, builds
// the power-distance matrix, clusters, and post-processes into a PowerView.
// When `ws` is non-null, all matrix temporaries (scaled table, distance
// pipeline scratch) are drawn from it — the serving hot path passes its
// per-worker Workspace so repeated calls do no heap traffic after warmup.
PowerView build_power_view(const dnn::Graph& graph,
                           const ClusteringConfig& config,
                           linalg::Workspace* ws = nullptr);

// Variant taking a pre-extracted *unscaled* depthwise feature table (row i ==
// layer i); used by the dataset generator to avoid re-extraction in sweeps.
PowerView build_power_view(const linalg::Matrix& depthwise_features,
                           const ClusteringConfig& config,
                           linalg::Workspace* ws = nullptr);

// Scaled features -> power-distance matrix (Algorithm 1 lines 2-12). Compute
// once per network, then sweep hyperparameters cheaply with the overload
// below — the distance matrix does not depend on eps/minPts.
linalg::Matrix power_distances_for(const linalg::Matrix& depthwise_features,
                                   const DistanceParams& params);
// Workspace variant: the result lands in `dist` (reshaped) and every
// temporary comes from `ws`.
void power_distances_into(const linalg::Matrix& depthwise_features,
                          const DistanceParams& params, linalg::Workspace& ws,
                          linalg::Matrix& dist);

// Batched variant over many networks' unscaled feature tables: scales each
// table with its own fitted scaler (exactly as power_distances_into does),
// then computes every distance matrix through one shared
// eigendecomposition batch (power_distance_matrix_batch_into). dists[i] is
// bitwise identical to power_distances_into on tables[i]; `tables` and
// `dists` must be the same length. This is the coalesced plan-compute
// path's entry into Algorithm 1.
void power_distances_batch_into(
    std::span<const linalg::Matrix* const> depthwise_tables,
    const DistanceParams& params, linalg::Workspace& ws,
    std::span<linalg::Matrix* const> dists);

// Eps-aware variant of power_distances_into for when the clustering
// hyperparameters are already predicted (the cold-plan serving path): the
// power-distance matrix lands in `dist` and its ε-threshold CSR adjacency
// in `adj`, emitted inside the distance kernels' own sweeps — DBSCAN then
// runs on neighbor lists without ever rescanning the matrix. On the
// Mahalanobis path `dist` follows power_distance_matrix_adj_into's
// TRIANGULAR contract: lower half + zero diagonal bitwise identical to
// power_distances_into, upper half unspecified — consumers must index
// (max(i, j), min(i, j)). `adj` always matches the full symmetric matrix.
void power_distances_adj_into(const linalg::Matrix& depthwise_features,
                              const DistanceParams& params, double eps,
                              linalg::Workspace& ws, linalg::Matrix& dist,
                              EpsAdjacency& adj);

// Batched eps-aware variant (per-graph eps from per-graph hyperparameter
// predictions); dists[i]/adjs[i] match power_distances_adj_into on
// tables[i]. All spans must be the same length.
void power_distances_adj_batch_into(
    std::span<const linalg::Matrix* const> depthwise_tables,
    const DistanceParams& params, std::span<const double> eps,
    linalg::Workspace& ws, std::span<linalg::Matrix* const> dists,
    std::span<EpsAdjacency* const> adjs);

// DBSCAN + post-processing on a precomputed power-distance matrix.
PowerView build_power_view_from_distances(const linalg::Matrix& distances,
                                          const ClusteringHyperparams& hyper);

// Same, with the ε-neighborhoods taken from a prebuilt CSR adjacency (the
// fused distance-pipeline output). `adj` must have been built from
// `distances` at hyper.eps; labels — and therefore the PowerView — are
// identical to build_power_view_from_distances.
PowerView build_power_view_from_adjacency(const linalg::Matrix& distances,
                                          const EpsAdjacency& adj,
                                          const ClusteringHyperparams& hyper);

}  // namespace powerlens::clustering
