#include "clustering/dbscan.hpp"

#include <bit>
#include <deque>
#include <stdexcept>

namespace powerlens::clustering {

namespace {

void check_params(const DbscanParams& params) {
  if (params.eps <= 0.0 || params.min_pts == 0) {
    throw std::invalid_argument("dbscan: eps must be > 0 and min_pts >= 1");
  }
}

}  // namespace

EpsAdjacency EpsAdjacency::from_distances(const linalg::Matrix& distances,
                                          double eps) {
  if (!distances.square() || distances.rows() == 0) {
    throw std::invalid_argument(
        "EpsAdjacency: distance matrix must be square");
  }
  if (eps <= 0.0) {
    throw std::invalid_argument("EpsAdjacency: eps must be > 0");
  }
  const std::size_t n = distances.rows();
  EpsAdjacency adj;
  adj.n = n;
  adj.offsets.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t deg = 0;
    for (std::size_t j = 0; j < n; ++j) {
      deg += distances(i, j) <= eps ? 1u : 0u;
    }
    adj.offsets[i + 1] = adj.offsets[i] + deg;
  }
  adj.neighbors.resize(adj.offsets[n]);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t* out = adj.neighbors.data() + adj.offsets[i];
    for (std::size_t j = 0; j < n; ++j) {
      if (distances(i, j) <= eps) *out++ = static_cast<std::uint32_t>(j);
    }
  }
  return adj;
}

EpsAdjacency EpsAdjacency::from_bitmap(std::size_t n,
                                       const std::uint64_t* bits,
                                       std::size_t words,
                                       const std::size_t* degree) {
  EpsAdjacency adj;
  adj.n = n;
  adj.offsets.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    adj.offsets[i + 1] =
        adj.offsets[i] + static_cast<std::uint32_t>(degree[i]);
  }
  adj.neighbors.resize(adj.offsets[n]);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t* out = adj.neighbors.data() + adj.offsets[i];
    const std::uint64_t* row = bits + i * words;
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t word = row[w];
      while (word != 0) {
        const unsigned b = static_cast<unsigned>(std::countr_zero(word));
        *out++ = static_cast<std::uint32_t>(64 * w + b);
        word &= word - 1;
      }
    }
  }
  return adj;
}

std::vector<int> dbscan(const EpsAdjacency& adj, const DbscanParams& params) {
  check_params(params);
  if (adj.n == 0 || adj.offsets.size() != adj.n + 1) {
    throw std::invalid_argument("dbscan: malformed adjacency");
  }
  const std::size_t n = adj.n;

  constexpr int kUnvisited = -2;
  std::vector<int> labels(n, kUnvisited);
  // Enqueue stamp keyed by cluster id + 1 so it never needs clearing
  // between clusters: a point enters the current cluster's frontier at
  // most once. Together with skipping already-cluster-labeled neighbors
  // this removes the reference implementation's duplicate re-enqueues;
  // the pops that remain are exactly the reference's first-occurrence
  // (effective) pops in the same order — later duplicates were no-ops
  // there — so expansion order, border attribution, and every label are
  // unchanged (see the equivalence regression test).
  std::vector<int> enqueued(n, 0);
  std::deque<std::uint32_t> frontier;
  int next_cluster = 0;

  const auto push_unclaimed = [&](const std::uint32_t* row, std::size_t deg,
                                  int stamp) {
    for (std::size_t p = 0; p < deg; ++p) {
      const std::uint32_t q = row[p];
      if (labels[q] >= 0 || enqueued[q] == stamp) continue;
      enqueued[q] = stamp;
      frontier.push_back(q);
    }
  };

  for (std::size_t i = 0; i < n; ++i) {
    if (labels[i] != kUnvisited) continue;
    if (adj.degree(i) < params.min_pts) {
      labels[i] = kNoise;
      continue;
    }
    const int cluster = next_cluster++;
    const int stamp = cluster + 1;
    labels[i] = cluster;
    push_unclaimed(adj.row(i), adj.degree(i), stamp);
    while (!frontier.empty()) {
      const std::uint32_t q = frontier.front();
      frontier.pop_front();
      if (labels[q] == kNoise) {
        labels[q] = cluster;  // border point: claimed, never expanded
        continue;
      }
      if (labels[q] != kUnvisited) continue;
      labels[q] = cluster;
      if (adj.degree(q) >= params.min_pts) {
        push_unclaimed(adj.row(q), adj.degree(q), stamp);
      }
    }
  }
  return labels;
}

std::vector<int> dbscan(const linalg::Matrix& distances,
                        const DbscanParams& params) {
  if (!distances.square() || distances.rows() == 0) {
    throw std::invalid_argument("dbscan: distance matrix must be square");
  }
  check_params(params);
  return dbscan(EpsAdjacency::from_distances(distances, params.eps), params);
}

std::vector<int> dbscan_reference(const linalg::Matrix& distances,
                                  const DbscanParams& params) {
  if (!distances.square() || distances.rows() == 0) {
    throw std::invalid_argument("dbscan: distance matrix must be square");
  }
  check_params(params);
  const std::size_t n = distances.rows();

  auto neighbors = [&](std::size_t i) {
    std::vector<std::size_t> out;
    for (std::size_t j = 0; j < n; ++j) {
      if (distances(i, j) <= params.eps) out.push_back(j);  // includes i
    }
    return out;
  };

  constexpr int kUnvisited = -2;
  std::vector<int> labels(n, kUnvisited);
  int next_cluster = 0;

  for (std::size_t i = 0; i < n; ++i) {
    if (labels[i] != kUnvisited) continue;
    std::vector<std::size_t> nbrs = neighbors(i);
    if (nbrs.size() < params.min_pts) {
      labels[i] = kNoise;
      continue;
    }
    const int cluster = next_cluster++;
    labels[i] = cluster;
    std::deque<std::size_t> frontier(nbrs.begin(), nbrs.end());
    while (!frontier.empty()) {
      const std::size_t q = frontier.front();
      frontier.pop_front();
      if (labels[q] == kNoise) labels[q] = cluster;  // border point
      if (labels[q] != kUnvisited) continue;
      labels[q] = cluster;
      const std::vector<std::size_t> q_nbrs = neighbors(q);
      if (q_nbrs.size() >= params.min_pts) {
        frontier.insert(frontier.end(), q_nbrs.begin(), q_nbrs.end());
      }
    }
  }
  return labels;
}

}  // namespace powerlens::clustering
