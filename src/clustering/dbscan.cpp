#include "clustering/dbscan.hpp"

#include <deque>
#include <stdexcept>

namespace powerlens::clustering {

std::vector<int> dbscan(const linalg::Matrix& distances,
                        const DbscanParams& params) {
  if (!distances.square() || distances.rows() == 0) {
    throw std::invalid_argument("dbscan: distance matrix must be square");
  }
  if (params.eps <= 0.0 || params.min_pts == 0) {
    throw std::invalid_argument("dbscan: eps must be > 0 and min_pts >= 1");
  }
  const std::size_t n = distances.rows();

  auto neighbors = [&](std::size_t i) {
    std::vector<std::size_t> out;
    for (std::size_t j = 0; j < n; ++j) {
      if (distances(i, j) <= params.eps) out.push_back(j);  // includes i
    }
    return out;
  };

  constexpr int kUnvisited = -2;
  std::vector<int> labels(n, kUnvisited);
  int next_cluster = 0;

  for (std::size_t i = 0; i < n; ++i) {
    if (labels[i] != kUnvisited) continue;
    std::vector<std::size_t> nbrs = neighbors(i);
    if (nbrs.size() < params.min_pts) {
      labels[i] = kNoise;
      continue;
    }
    const int cluster = next_cluster++;
    labels[i] = cluster;
    std::deque<std::size_t> frontier(nbrs.begin(), nbrs.end());
    while (!frontier.empty()) {
      const std::size_t q = frontier.front();
      frontier.pop_front();
      if (labels[q] == kNoise) labels[q] = cluster;  // border point
      if (labels[q] != kUnvisited) continue;
      labels[q] = cluster;
      const std::vector<std::size_t> q_nbrs = neighbors(q);
      if (q_nbrs.size() >= params.min_pts) {
        frontier.insert(frontier.end(), q_nbrs.begin(), q_nbrs.end());
      }
    }
  }
  return labels;
}

}  // namespace powerlens::clustering
