#include "clustering/cluster.hpp"

#include "features/depthwise.hpp"
#include "linalg/stats.hpp"

namespace powerlens::clustering {

PowerView build_power_view(const dnn::Graph& graph,
                           const ClusteringConfig& config) {
  return build_power_view(
      features::DepthwiseFeatureExtractor::extract(graph), config);
}

PowerView build_power_view(const linalg::Matrix& depthwise_features,
                           const ClusteringConfig& config) {
  const linalg::Matrix dist =
      power_distances_for(depthwise_features, config.distance);
  return build_power_view_from_distances(dist, config.hyper);
}

linalg::Matrix power_distances_for(const linalg::Matrix& depthwise_features,
                                   const DistanceParams& params) {
  linalg::StandardScaler scaler;
  const linalg::Matrix scaled = scaler.fit_transform(depthwise_features);
  return power_distance_matrix(scaled, params);
}

PowerView build_power_view_from_distances(
    const linalg::Matrix& distances, const ClusteringHyperparams& hyper) {
  const std::vector<int> labels = dbscan(distances, {hyper.eps, hyper.min_pts});
  return process_clusters(labels, distances,
                          {.min_block_layers = hyper.min_pts});
}

}  // namespace powerlens::clustering
