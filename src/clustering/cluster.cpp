#include "clustering/cluster.hpp"

#include "features/depthwise.hpp"
#include "linalg/stats.hpp"

#include <stdexcept>
#include <vector>

namespace powerlens::clustering {

PowerView build_power_view(const dnn::Graph& graph,
                           const ClusteringConfig& config,
                           linalg::Workspace* ws) {
  return build_power_view(features::DepthwiseFeatureExtractor::extract(graph),
                          config, ws);
}

PowerView build_power_view(const linalg::Matrix& depthwise_features,
                           const ClusteringConfig& config,
                           linalg::Workspace* ws) {
  if (ws != nullptr) {
    linalg::Workspace::Lease dist = ws->lease(0, 0);
    power_distances_into(depthwise_features, config.distance, *ws, *dist);
    return build_power_view_from_distances(*dist, config.hyper);
  }
  const linalg::Matrix dist =
      power_distances_for(depthwise_features, config.distance);
  return build_power_view_from_distances(dist, config.hyper);
}

linalg::Matrix power_distances_for(const linalg::Matrix& depthwise_features,
                                   const DistanceParams& params) {
  linalg::StandardScaler scaler;
  const linalg::Matrix scaled = scaler.fit_transform(depthwise_features);
  return power_distance_matrix(scaled, params);
}

void power_distances_into(const linalg::Matrix& depthwise_features,
                          const DistanceParams& params, linalg::Workspace& ws,
                          linalg::Matrix& dist) {
  linalg::StandardScaler scaler;
  scaler.fit(depthwise_features);
  linalg::Workspace::Lease scaled =
      ws.lease(depthwise_features.rows(), depthwise_features.cols());
  scaler.transform_into(depthwise_features, *scaled);
  power_distance_matrix_into(*scaled, params, ws, dist);
}

void power_distances_batch_into(
    std::span<const linalg::Matrix* const> depthwise_tables,
    const DistanceParams& params, linalg::Workspace& ws,
    std::span<linalg::Matrix* const> dists) {
  if (depthwise_tables.size() != dists.size()) {
    throw std::invalid_argument(
        "power_distances_batch: tables/dists size mismatch");
  }
  // Scale every table first (leases stay alive across the batch), then one
  // batched distance call shares the eigendecomposition sweeps.
  std::vector<linalg::Workspace::Lease> scaled;
  scaled.reserve(depthwise_tables.size());
  std::vector<const linalg::Matrix*> scaled_ptrs;
  scaled_ptrs.reserve(depthwise_tables.size());
  for (const linalg::Matrix* table : depthwise_tables) {
    linalg::StandardScaler scaler;
    scaler.fit(*table);
    scaled.push_back(ws.lease(table->rows(), table->cols()));
    scaler.transform_into(*table, *scaled.back());
    scaled_ptrs.push_back(&*scaled.back());
  }
  power_distance_matrix_batch_into(scaled_ptrs, params, ws, dists);
}

void power_distances_adj_into(const linalg::Matrix& depthwise_features,
                              const DistanceParams& params, double eps,
                              linalg::Workspace& ws, linalg::Matrix& dist,
                              EpsAdjacency& adj) {
  linalg::StandardScaler scaler;
  scaler.fit(depthwise_features);
  linalg::Workspace::Lease scaled =
      ws.lease(depthwise_features.rows(), depthwise_features.cols());
  scaler.transform_into(depthwise_features, *scaled);
  power_distance_matrix_adj_into(*scaled, params, eps, ws, dist, adj);
}

void power_distances_adj_batch_into(
    std::span<const linalg::Matrix* const> depthwise_tables,
    const DistanceParams& params, std::span<const double> eps,
    linalg::Workspace& ws, std::span<linalg::Matrix* const> dists,
    std::span<EpsAdjacency* const> adjs) {
  if (depthwise_tables.size() != dists.size() ||
      depthwise_tables.size() != eps.size() ||
      depthwise_tables.size() != adjs.size()) {
    throw std::invalid_argument(
        "power_distances_adj_batch: span size mismatch");
  }
  std::vector<linalg::Workspace::Lease> scaled;
  scaled.reserve(depthwise_tables.size());
  std::vector<const linalg::Matrix*> scaled_ptrs;
  scaled_ptrs.reserve(depthwise_tables.size());
  for (const linalg::Matrix* table : depthwise_tables) {
    linalg::StandardScaler scaler;
    scaler.fit(*table);
    scaled.push_back(ws.lease(table->rows(), table->cols()));
    scaler.transform_into(*table, *scaled.back());
    scaled_ptrs.push_back(&*scaled.back());
  }
  power_distance_matrix_adj_batch_into(scaled_ptrs, params, eps, ws, dists,
                                       adjs);
}

PowerView build_power_view_from_distances(
    const linalg::Matrix& distances, const ClusteringHyperparams& hyper) {
  const std::vector<int> labels = dbscan(distances, {hyper.eps, hyper.min_pts});
  return process_clusters(labels, distances,
                          {.min_block_layers = hyper.min_pts});
}

PowerView build_power_view_from_adjacency(const linalg::Matrix& distances,
                                          const EpsAdjacency& adj,
                                          const ClusteringHyperparams& hyper) {
  if (adj.n != distances.rows()) {
    throw std::invalid_argument(
        "build_power_view_from_adjacency: adjacency/matrix size mismatch");
  }
  const std::vector<int> labels = dbscan(adj, {hyper.eps, hyper.min_pts});
  return process_clusters(labels, distances,
                          {.min_block_layers = hyper.min_pts});
}

}  // namespace powerlens::clustering
