// Cluster post-processing (Algorithm 1, line 14: processClusters).
//
// DBSCAN labels need three repairs before they form a usable power view
// (paper section 2.1.3, "post-processing of clustering results"):
//   1. contiguity — a cluster whose members are split by other labels becomes
//      several blocks (the view is a partition of execution order);
//   2. noise handling — isolated points are absorbed into an adjacent block;
//   3. size/shape adjustment — blocks shorter than min_block_layers are
//      merged into the neighbouring block with the closer power behaviour,
//      since a DVFS switch cannot amortize over a tiny block.
#pragma once

#include "clustering/power_view.hpp"
#include "linalg/matrix.hpp"

#include <cstddef>
#include <vector>

namespace powerlens::clustering {

struct PostprocessParams {
  // Minimum layers per final block; blocks below this merge into a neighbor.
  std::size_t min_block_layers = 3;
};

// Converts per-layer DBSCAN labels into a contiguous, covering PowerView.
// `distances` is the power-distance matrix used for the closer-neighbor
// merge rule (pass the same matrix given to dbscan()).
PowerView process_clusters(const std::vector<int>& labels,
                           const linalg::Matrix& distances,
                           const PostprocessParams& params);

}  // namespace powerlens::clustering
