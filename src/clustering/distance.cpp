#include "clustering/distance.hpp"

#include "linalg/eigen.hpp"
#include "linalg/kernels.hpp"
#include "linalg/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace powerlens::clustering {

namespace {

// Per-offset spacing-penalty table shared by every blend entry point:
// penalty[t] = 1 - exp(-lambda * t), penalty[0] = 0.
void fill_penalty(double lambda, std::size_t n, linalg::Matrix& penalty) {
  penalty(0, 0) = 0.0;
  for (std::size_t t = 1; t < n; ++t) {
    penalty(0, t) = 1.0 - std::exp(-lambda * static_cast<double>(t));
  }
}

// The fused triangular Mahalanobis adjacency tail: whitened projection,
// lower-triangle Gram, max prepass, then ONE blended-lower + ε-bitmap
// sweep. `out` gets the lower triangle + zero diagonal (upper unspecified);
// every written element is bitwise identical to the full-matrix pipeline
// (gram_to_dist_max + dist_blend_adj), which this path replaces on the hot
// plan-compute route — the mirror half cost n²/2 strided writes plus a
// full extra matrix pass and fed nothing but symmetric re-reads.
void mahalanobis_blend_adj_lower_into(const linalg::Matrix& x,
                                      const linalg::Matrix& w,
                                      const DistanceParams& params, double eps,
                                      linalg::Workspace& ws,
                                      linalg::Matrix& out, EpsAdjacency& adj) {
  if (eps <= 0.0) {
    throw std::invalid_argument("power_distance_blend_adj: eps must be > 0");
  }
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  if (n == 0 || d == 0) {
    throw std::invalid_argument("mahalanobis_distances: empty feature table");
  }
  if (w.cols() != d) {
    throw std::invalid_argument(
        "mahalanobis_from_whitening: factor width does not match features");
  }
  const std::size_t k = w.rows();
  if (k == 0) {
    // Zero covariance: every pairwise feature distance is 0. Reproduce the
    // full pipeline exactly — a zero matrix through the dense blend.
    out.reshape(n, n);
    power_distance_blend_adj_into(params, 0.0, eps, ws, out, adj);
    return;
  }

  linalg::Workspace::Lease y = ws.lease_uninit(n, k);
  linalg::kernels::gemm_nt(n, k, d, x.data().data(), d, w.data().data(), d,
                           y->data().data(), k);
  linalg::Workspace::Lease gram = ws.lease_uninit(n, n);
  {
    linalg::Workspace::Lease at = ws.lease_uninit(k, n);  // syrk Aᵀ scratch
    linalg::kernels::syrk_nt(n, k, y->data().data(), k, at->data().data(),
                             gram->data().data(), n);
  }
  linalg::Workspace::Lease norms = ws.lease_uninit(1, n);
  double max_d = 0.0;
  linalg::kernels::gram_dist_max(n, gram->data().data(), n,
                                 norms->data().data(), &max_d);
  const double inv_max = max_d > 0.0 ? 1.0 / max_d : 1.0;

  linalg::Workspace::Lease penalty = ws.lease_uninit(1, n);
  fill_penalty(params.lambda, n, *penalty);
  const std::size_t words = (n + 63) / 64;
  std::vector<std::uint64_t> bits(n * words);
  std::vector<std::size_t> degree(n);
  out.reshape_no_fill(n, n);  // lower triangle fully overwritten below
  linalg::kernels::gram_blend_adj(
      n, gram->data().data(), n, norms->data().data(), params.alpha, inv_max,
      1.0 - params.alpha, penalty->data().data(), out.data().data(), n, eps,
      bits.data(), words, degree.data());
  adj = EpsAdjacency::from_bitmap(n, bits.data(), words, degree.data());
}

}  // namespace

void mahalanobis_from_whitening_into(const linalg::Matrix& x,
                                     const linalg::Matrix& w,
                                     linalg::Workspace& ws,
                                     linalg::Matrix& dist) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  if (n == 0 || d == 0) {
    throw std::invalid_argument("mahalanobis_distances: empty feature table");
  }
  if (w.cols() != d) {
    throw std::invalid_argument(
        "mahalanobis_from_whitening: factor width does not match features");
  }
  const std::size_t k = w.rows();

  dist.reshape(n, n);
  if (k == 0) return;  // zero covariance: all rows identical under P

  // P = Wᵀ W; d²(i,j) = ‖W(xᵢ − xⱼ)‖² = ‖yᵢ − yⱼ‖² with Y = X Wᵀ. The mean
  // never needs subtracting — it cancels in the row differences.
  linalg::Workspace::Lease y = ws.lease(n, k);
  linalg::kernels::gemm_nt(n, k, d, x.data().data(), d, w.data().data(), d,
                           y->data().data(), k);
  // Only the lower Gram triangle is materialized (each entry one fused
  // multiply-add chain — see syrk_nt's contract), and the sqrt epilogue
  // runs inside the kernel layer so it vectorizes; the epilogue itself is
  // bitwise the classic sqrt(max(nᵢ + nⱼ - 2·g, 0)) mirror loop.
  linalg::Workspace::Lease gram = ws.lease(n, n);
  {
    linalg::Workspace::Lease at = ws.lease_uninit(k, n);  // syrk Aᵀ scratch
    linalg::kernels::syrk_nt(n, k, y->data().data(), k, at->data().data(),
                             gram->data().data(), n);
  }
  linalg::Workspace::Lease norms = ws.lease(1, n);
  linalg::kernels::gram_to_dist(n, gram->data().data(), n, dist.data().data(),
                                n, norms->data().data());
}

void mahalanobis_from_whitening_max_into(const linalg::Matrix& x,
                                         const linalg::Matrix& w,
                                         linalg::Workspace& ws,
                                         linalg::Matrix& dist,
                                         double& max_out) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  if (n == 0 || d == 0) {
    throw std::invalid_argument("mahalanobis_distances: empty feature table");
  }
  if (w.cols() != d) {
    throw std::invalid_argument(
        "mahalanobis_from_whitening: factor width does not match features");
  }
  const std::size_t k = w.rows();

  dist.reshape(n, n);
  max_out = 0.0;
  if (k == 0) return;  // zero covariance: dist is all zeros, max is 0

  linalg::Workspace::Lease y = ws.lease(n, k);
  linalg::kernels::gemm_nt(n, k, d, x.data().data(), d, w.data().data(), d,
                           y->data().data(), k);
  linalg::Workspace::Lease gram = ws.lease(n, n);
  {
    linalg::Workspace::Lease at = ws.lease_uninit(k, n);  // syrk Aᵀ scratch
    linalg::kernels::syrk_nt(n, k, y->data().data(), k, at->data().data(),
                             gram->data().data(), n);
  }
  linalg::Workspace::Lease norms = ws.lease(1, n);
  // Same kernel sweep as gram_to_dist plus a per-row running max over the
  // lower triangle; symmetry + zero diagonal make that the full-matrix max.
  linalg::kernels::gram_to_dist_max(n, gram->data().data(), n,
                                    dist.data().data(), n,
                                    norms->data().data(), &max_out);
}

void mahalanobis_distances_into(const linalg::Matrix& x,
                                linalg::Workspace& ws, linalg::Matrix& dist) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  if (n == 0 || d == 0) {
    throw std::invalid_argument("mahalanobis_distances: empty feature table");
  }
  linalg::Workspace::Lease cov = ws.lease(d, d);
  linalg::covariance_into(x, *cov);
  const linalg::Matrix w = linalg::whitening_factor_spd(*cov);
  mahalanobis_from_whitening_into(x, w, ws, dist);
}

linalg::Matrix mahalanobis_distances(const linalg::Matrix& x) {
  linalg::Workspace ws;
  linalg::Matrix dist;
  mahalanobis_distances_into(x, ws, dist);
  return dist;
}

linalg::Matrix mahalanobis_distances_naive(const linalg::Matrix& x) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  if (n == 0 || d == 0) {
    throw std::invalid_argument("mahalanobis_distances: empty feature table");
  }
  const linalg::Matrix cov = linalg::covariance(x);
  const linalg::Matrix p = linalg::pseudo_inverse_spd(cov);

  linalg::Matrix dist(n, n);
  std::vector<double> diff(d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      for (std::size_t k = 0; k < d; ++k) diff[k] = x(i, k) - x(j, k);
      // d^2 = diff^T P diff
      double acc = 0.0;
      for (std::size_t r = 0; r < d; ++r) {
        if (diff[r] == 0.0) continue;
        double row = 0.0;
        for (std::size_t c = 0; c < d; ++c) row += p(r, c) * diff[c];
        acc += diff[r] * row;
      }
      const double dd = std::sqrt(std::max(acc, 0.0));
      dist(i, j) = dd;
      dist(j, i) = dd;
    }
  }
  return dist;
}

void euclidean_distances_into(const linalg::Matrix& x, linalg::Matrix& dist) {
  const std::size_t n = x.rows();
  if (n == 0 || x.cols() == 0) {
    throw std::invalid_argument("euclidean_distances: empty feature table");
  }
  dist.reshape(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < x.cols(); ++k) {
        const double d = x(i, k) - x(j, k);
        acc += d * d;
      }
      const double dd = std::sqrt(acc);
      dist(i, j) = dd;
      dist(j, i) = dd;
    }
  }
}

linalg::Matrix euclidean_distances(const linalg::Matrix& x) {
  linalg::Matrix dist;
  euclidean_distances_into(x, dist);
  return dist;
}

linalg::Matrix spacing_penalty(std::size_t n, double lambda) {
  if (n == 0 || lambda < 0.0) {
    throw std::invalid_argument("spacing_penalty: bad arguments");
  }
  linalg::Matrix r(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v =
          1.0 - std::exp(-lambda * static_cast<double>(j - i));
      r(i, j) = v;
      r(j, i) = v;
    }
  }
  return r;
}

void power_distance_blend_into(const DistanceParams& params,
                               linalg::Workspace& ws, linalg::Matrix& out) {
  const std::size_t n = out.rows();

  // Normalize the feature distance to [0, 1] so alpha weighs two
  // commensurate terms regardless of feature dimensionality.
  double max_d = 0.0;
  for (const double v : out.data()) max_d = std::max(max_d, v);
  const double inv_max = max_d > 0.0 ? 1.0 / max_d : 1.0;

  // The spacing penalty depends only on |i - j|: one exp per offset, then a
  // single fused normalize-and-blend kernel pass over the one output matrix
  // (previously: three n x n matrices and a separate max-scan).
  linalg::Workspace::Lease penalty = ws.lease_uninit(1, n);
  fill_penalty(params.lambda, n, *penalty);
  linalg::kernels::dist_blend(n, params.alpha, inv_max, 1.0 - params.alpha,
                              penalty->data().data(), out.data().data(), n);
}

void power_distance_blend_adj_into(const DistanceParams& params, double max_d,
                                   double eps, linalg::Workspace& ws,
                                   linalg::Matrix& out, EpsAdjacency& adj) {
  if (eps <= 0.0) {
    throw std::invalid_argument("power_distance_blend_adj: eps must be > 0");
  }
  const std::size_t n = out.rows();
  const double inv_max = max_d > 0.0 ? 1.0 / max_d : 1.0;

  linalg::Workspace::Lease penalty = ws.lease_uninit(1, n);
  fill_penalty(params.lambda, n, *penalty);
  // Same blend arithmetic as power_distance_blend_into; the kernel's row
  // epilogue additionally packs every entry <= eps into a neighbor bitmap,
  // so the ε-adjacency costs no second pass over the matrix.
  const std::size_t words = (n + 63) / 64;
  std::vector<std::uint64_t> bits(n * words);
  std::vector<std::size_t> degree(n);
  linalg::kernels::dist_blend_adj(n, params.alpha, inv_max, 1.0 - params.alpha,
                                  penalty->data().data(), out.data().data(), n,
                                  eps, bits.data(), words, degree.data());
  adj = EpsAdjacency::from_bitmap(n, bits.data(), words, degree.data());
}

void power_distance_matrix_adj_into(const linalg::Matrix& scaled_features,
                                    const DistanceParams& params, double eps,
                                    linalg::Workspace& ws, linalg::Matrix& out,
                                    EpsAdjacency& adj) {
  if (params.alpha < 0.0 || params.alpha > 1.0) {
    throw std::invalid_argument("power_distance_matrix: alpha outside [0,1]");
  }
  if (params.metric == FeatureMetric::kMahalanobis) {
    const std::size_t d = scaled_features.cols();
    if (scaled_features.rows() == 0 || d == 0) {
      throw std::invalid_argument(
          "mahalanobis_distances: empty feature table");
    }
    linalg::Workspace::Lease cov = ws.lease(d, d);
    linalg::covariance_into(scaled_features, *cov);
    const linalg::Matrix w = linalg::whitening_factor_spd(*cov);
    // Triangular fused tail: no intermediate distance matrix, no mirror
    // writes — the blended lower half + symmetric ε-bitmap in one sweep.
    mahalanobis_blend_adj_lower_into(scaled_features, w, params, eps, ws, out,
                                     adj);
  } else {
    double max_d = 0.0;
    euclidean_distances_into(scaled_features, out);
    for (const double v : out.data()) max_d = std::max(max_d, v);
    power_distance_blend_adj_into(params, max_d, eps, ws, out, adj);
  }
}

void power_distance_matrix_into(const linalg::Matrix& scaled_features,
                                const DistanceParams& params,
                                linalg::Workspace& ws, linalg::Matrix& out) {
  if (params.alpha < 0.0 || params.alpha > 1.0) {
    throw std::invalid_argument("power_distance_matrix: alpha outside [0,1]");
  }
  if (params.metric == FeatureMetric::kMahalanobis) {
    mahalanobis_distances_into(scaled_features, ws, out);
  } else {
    euclidean_distances_into(scaled_features, out);
  }
  power_distance_blend_into(params, ws, out);
}

void power_distance_matrix_batch_into(
    std::span<const linalg::Matrix* const> tables,
    const DistanceParams& params, linalg::Workspace& ws,
    std::span<linalg::Matrix* const> dists) {
  if (tables.size() != dists.size()) {
    throw std::invalid_argument(
        "power_distance_matrix_batch: tables/dists size mismatch");
  }
  if (params.alpha < 0.0 || params.alpha > 1.0) {
    throw std::invalid_argument("power_distance_matrix: alpha outside [0,1]");
  }
  if (tables.empty()) return;

  if (params.metric != FeatureMetric::kMahalanobis) {
    for (std::size_t i = 0; i < tables.size(); ++i) {
      euclidean_distances_into(*tables[i], *dists[i]);
      power_distance_blend_into(params, ws, *dists[i]);
    }
    return;
  }

  // One covariance per table, then ONE shared eigendecomposition batch —
  // the per-table arithmetic is exactly the serial path's, so each output
  // matrix is bitwise identical to power_distance_matrix_into on its table.
  std::vector<linalg::Workspace::Lease> covs;
  covs.reserve(tables.size());
  std::vector<const linalg::Matrix*> cov_ptrs;
  cov_ptrs.reserve(tables.size());
  for (const linalg::Matrix* x : tables) {
    if (x->rows() == 0 || x->cols() == 0) {
      throw std::invalid_argument(
          "mahalanobis_distances: empty feature table");
    }
    covs.push_back(ws.lease(x->cols(), x->cols()));
    linalg::covariance_into(*x, *covs.back());
    cov_ptrs.push_back(&*covs.back());
  }
  const std::vector<linalg::Matrix> factors =
      linalg::batched_whitening(cov_ptrs);
  for (std::size_t i = 0; i < tables.size(); ++i) {
    mahalanobis_from_whitening_into(*tables[i], factors[i], ws, *dists[i]);
    power_distance_blend_into(params, ws, *dists[i]);
  }
}

void power_distance_matrix_adj_batch_into(
    std::span<const linalg::Matrix* const> tables,
    const DistanceParams& params, std::span<const double> eps,
    linalg::Workspace& ws, std::span<linalg::Matrix* const> dists,
    std::span<EpsAdjacency* const> adjs) {
  if (tables.size() != dists.size() || tables.size() != eps.size() ||
      tables.size() != adjs.size()) {
    throw std::invalid_argument(
        "power_distance_matrix_adj_batch: span size mismatch");
  }
  if (params.alpha < 0.0 || params.alpha > 1.0) {
    throw std::invalid_argument("power_distance_matrix: alpha outside [0,1]");
  }
  if (tables.empty()) return;

  if (params.metric != FeatureMetric::kMahalanobis) {
    for (std::size_t i = 0; i < tables.size(); ++i) {
      power_distance_matrix_adj_into(*tables[i], params, eps[i], ws,
                                     *dists[i], *adjs[i]);
    }
    return;
  }

  // Identical batching structure to power_distance_matrix_batch_into (one
  // shared eigendecomposition batch), with the fused max + adjacency tail.
  std::vector<linalg::Workspace::Lease> covs;
  covs.reserve(tables.size());
  std::vector<const linalg::Matrix*> cov_ptrs;
  cov_ptrs.reserve(tables.size());
  for (const linalg::Matrix* x : tables) {
    if (x->rows() == 0 || x->cols() == 0) {
      throw std::invalid_argument(
          "mahalanobis_distances: empty feature table");
    }
    covs.push_back(ws.lease(x->cols(), x->cols()));
    linalg::covariance_into(*x, *covs.back());
    cov_ptrs.push_back(&*covs.back());
  }
  const std::vector<linalg::Matrix> factors =
      linalg::batched_whitening(cov_ptrs);
  for (std::size_t i = 0; i < tables.size(); ++i) {
    mahalanobis_blend_adj_lower_into(*tables[i], factors[i], params, eps[i],
                                     ws, *dists[i], *adjs[i]);
  }
}

linalg::Matrix power_distance_matrix(const linalg::Matrix& scaled_features,
                                     const DistanceParams& params) {
  linalg::Workspace ws;
  linalg::Matrix out;
  power_distance_matrix_into(scaled_features, params, ws, out);
  return out;
}

}  // namespace powerlens::clustering
