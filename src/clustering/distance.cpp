#include "clustering/distance.hpp"

#include "linalg/eigen.hpp"
#include "linalg/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace powerlens::clustering {

linalg::Matrix mahalanobis_distances(const linalg::Matrix& x) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  if (n == 0 || d == 0) {
    throw std::invalid_argument("mahalanobis_distances: empty feature table");
  }
  const linalg::Matrix cov = linalg::covariance(x);
  const linalg::Matrix p = linalg::pseudo_inverse_spd(cov);

  linalg::Matrix dist(n, n);
  std::vector<double> diff(d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      for (std::size_t k = 0; k < d; ++k) diff[k] = x(i, k) - x(j, k);
      // d^2 = diff^T P diff
      double acc = 0.0;
      for (std::size_t r = 0; r < d; ++r) {
        if (diff[r] == 0.0) continue;
        double row = 0.0;
        for (std::size_t c = 0; c < d; ++c) row += p(r, c) * diff[c];
        acc += diff[r] * row;
      }
      const double dd = std::sqrt(std::max(acc, 0.0));
      dist(i, j) = dd;
      dist(j, i) = dd;
    }
  }
  return dist;
}

linalg::Matrix euclidean_distances(const linalg::Matrix& x) {
  const std::size_t n = x.rows();
  if (n == 0 || x.cols() == 0) {
    throw std::invalid_argument("euclidean_distances: empty feature table");
  }
  linalg::Matrix dist(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < x.cols(); ++k) {
        const double d = x(i, k) - x(j, k);
        acc += d * d;
      }
      const double dd = std::sqrt(acc);
      dist(i, j) = dd;
      dist(j, i) = dd;
    }
  }
  return dist;
}

linalg::Matrix spacing_penalty(std::size_t n, double lambda) {
  if (n == 0 || lambda < 0.0) {
    throw std::invalid_argument("spacing_penalty: bad arguments");
  }
  linalg::Matrix r(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v =
          1.0 - std::exp(-lambda * static_cast<double>(j - i));
      r(i, j) = v;
      r(j, i) = v;
    }
  }
  return r;
}

linalg::Matrix power_distance_matrix(const linalg::Matrix& scaled_features,
                                     const DistanceParams& params) {
  if (params.alpha < 0.0 || params.alpha > 1.0) {
    throw std::invalid_argument("power_distance_matrix: alpha outside [0,1]");
  }
  linalg::Matrix feat =
      params.metric == FeatureMetric::kMahalanobis
          ? mahalanobis_distances(scaled_features)
          : euclidean_distances(scaled_features);

  // Normalize the feature distance to [0, 1] so alpha weighs two
  // commensurate terms regardless of feature dimensionality.
  double max_d = 0.0;
  for (std::size_t i = 0; i < feat.rows(); ++i) {
    for (std::size_t j = 0; j < feat.cols(); ++j) {
      max_d = std::max(max_d, feat(i, j));
    }
  }
  if (max_d > 0.0) feat *= 1.0 / max_d;

  const linalg::Matrix r = spacing_penalty(feat.rows(), params.lambda);
  linalg::Matrix out(feat.rows(), feat.cols());
  for (std::size_t i = 0; i < feat.rows(); ++i) {
    for (std::size_t j = 0; j < feat.cols(); ++j) {
      out(i, j) = params.alpha * feat(i, j) + (1.0 - params.alpha) * r(i, j);
    }
  }
  return out;
}

}  // namespace powerlens::clustering
