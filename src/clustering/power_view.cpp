#include "clustering/power_view.hpp"

namespace powerlens::clustering {

PowerView::PowerView(std::vector<PowerBlock> blocks, std::size_t num_layers)
    : blocks_(std::move(blocks)), num_layers_(num_layers) {
  if (blocks_.empty()) {
    throw std::invalid_argument("PowerView: no blocks");
  }
  std::size_t expected = 0;
  for (const PowerBlock& b : blocks_) {
    if (b.begin != expected || b.end <= b.begin) {
      throw std::invalid_argument(
          "PowerView: blocks must be contiguous, non-overlapping, and "
          "non-empty");
    }
    expected = b.end;
  }
  if (expected != num_layers_) {
    throw std::invalid_argument("PowerView: blocks must cover every layer");
  }
}

std::size_t PowerView::block_of(std::size_t layer) const {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].contains(layer)) return i;
  }
  throw std::out_of_range("PowerView::block_of: layer outside view");
}

std::string PowerView::to_string() const {
  std::string s = "PowerView{";
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    s += "[" + std::to_string(blocks_[i].begin) + "," +
         std::to_string(blocks_[i].end) + ")";
    if (i + 1 < blocks_.size()) s += " ";
  }
  s += "}";
  return s;
}

}  // namespace powerlens::clustering
