// Power view: the logical intermediate representation produced by power
// behavior similarity clustering (paper section 2.1.3).
//
// A power view partitions the network's execution order into contiguous,
// non-overlapping power blocks covering every layer. Each block is the unit
// of DVFS instrumentation: one preset point before the block, one target
// frequency for the whole block.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace powerlens::clustering {

struct PowerBlock {
  std::size_t begin = 0;  // first layer index (inclusive)
  std::size_t end = 0;    // past-the-end layer index

  std::size_t size() const noexcept { return end - begin; }
  bool contains(std::size_t layer) const noexcept {
    return layer >= begin && layer < end;
  }
  bool operator==(const PowerBlock&) const noexcept = default;
};

class PowerView {
 public:
  PowerView() = default;

  // Throws std::invalid_argument unless blocks are non-empty, sorted,
  // non-overlapping, and exactly cover [0, num_layers).
  PowerView(std::vector<PowerBlock> blocks, std::size_t num_layers);

  const std::vector<PowerBlock>& blocks() const noexcept { return blocks_; }
  std::size_t block_count() const noexcept { return blocks_.size(); }
  std::size_t num_layers() const noexcept { return num_layers_; }

  // Index of the block containing `layer`. Throws std::out_of_range.
  std::size_t block_of(std::size_t layer) const;

  std::string to_string() const;

  bool operator==(const PowerView&) const noexcept = default;

 private:
  std::vector<PowerBlock> blocks_;
  std::size_t num_layers_ = 0;
};

}  // namespace powerlens::clustering
