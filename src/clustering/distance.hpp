// Power-behavior distance computation (Algorithm 1, lines 2-12).
//
// The "power distance" between two operators combines:
//   - the Mahalanobis distance between their scaled depthwise feature
//     vectors, using the pseudo-inverse of the feature covariance (scale-free
//     across heterogeneous feature dimensions), and
//   - an operator-spacing regularization exp(-lambda * |i - j|) that keeps
//     physically distant operators from clustering merely because their
//     features look alike.
//
// NOTE on the regularization sign: Algorithm 1 writes
//   D_final = alpha * D + (1 - alpha) * R,  R = exp(-lambda |i-j|),
// but R as written *shrinks* the distance between far-apart operators,
// the opposite of the stated intent ("only physically adjacent operators
// are considered"). We therefore use the spacing *penalty*
//   R' = 1 - exp(-lambda |i-j|),
// which is zero for an operator and itself, grows with |i-j|, and matches
// the paper's described behaviour. DESIGN.md records this correction.
#pragma once

#include "linalg/matrix.hpp"

namespace powerlens::clustering {

enum class FeatureMetric {
  kMahalanobis,  // the paper's choice
  kEuclidean,    // ablation comparator
};

struct DistanceParams {
  double alpha = 0.7;    // weight of the feature distance vs spacing penalty
  double lambda = 0.15;  // spacing decay rate
  FeatureMetric metric = FeatureMetric::kMahalanobis;
};

// Pairwise Mahalanobis distances between rows of the scaled feature table X
// (layers x features), using pinv(cov(X)). Symmetric, zero diagonal.
linalg::Matrix mahalanobis_distances(const linalg::Matrix& x);

// Pairwise Euclidean distances between rows (ablation baseline).
linalg::Matrix euclidean_distances(const linalg::Matrix& x);

// Spacing penalty matrix R'[i,j] = 1 - exp(-lambda * |i - j|).
linalg::Matrix spacing_penalty(std::size_t n, double lambda);

// Final power distance: alpha * feature_distance (normalized to [0, 1] by
// its max) + (1 - alpha) * spacing penalty. Throws std::invalid_argument on
// an empty table or alpha outside [0, 1].
linalg::Matrix power_distance_matrix(const linalg::Matrix& scaled_features,
                                     const DistanceParams& params);

}  // namespace powerlens::clustering
