// Power-behavior distance computation (Algorithm 1, lines 2-12).
//
// The "power distance" between two operators combines:
//   - the Mahalanobis distance between their scaled depthwise feature
//     vectors, using the pseudo-inverse of the feature covariance (scale-free
//     across heterogeneous feature dimensions), and
//   - an operator-spacing regularization exp(-lambda * |i - j|) that keeps
//     physically distant operators from clustering merely because their
//     features look alike.
//
// NOTE on the regularization sign: Algorithm 1 writes
//   D_final = alpha * D + (1 - alpha) * R,  R = exp(-lambda |i-j|),
// but R as written *shrinks* the distance between far-apart operators,
// the opposite of the stated intent ("only physically adjacent operators
// are considered"). We therefore use the spacing *penalty*
//   R' = 1 - exp(-lambda |i-j|),
// which is zero for an operator and itself, grows with |i-j|, and matches
// the paper's described behaviour. DESIGN.md records this correction.
//
// Cost model: the Mahalanobis path factors the pseudo-inverse as
// P = Wᵀ W (linalg::whitening_factor_spd), whitens the feature table with
// one GEMM (Y = X Wᵀ), and reads every pairwise distance from
// ‖yᵢ‖² + ‖yⱼ‖² − 2·(Y Yᵀ)ᵢⱼ — O(n·d²) + two GEMMs instead of the naive
// O(n²·d²) per-pair quadratic form, which is kept as
// mahalanobis_distances_naive() purely as the test/bench oracle.
#pragma once

#include "clustering/dbscan.hpp"
#include "linalg/matrix.hpp"
#include "linalg/workspace.hpp"

#include <span>

namespace powerlens::clustering {

enum class FeatureMetric {
  kMahalanobis,  // the paper's choice
  kEuclidean,    // ablation comparator
};

struct DistanceParams {
  double alpha = 0.7;    // weight of the feature distance vs spacing penalty
  double lambda = 0.15;  // spacing decay rate
  FeatureMetric metric = FeatureMetric::kMahalanobis;
};

// Pairwise Mahalanobis distances between rows of the scaled feature table X
// (layers x features), using pinv(cov(X)). Symmetric (bitwise — each pair is
// computed once and mirrored), zero diagonal.
linalg::Matrix mahalanobis_distances(const linalg::Matrix& x);
// Same, with every temporary drawn from `ws` and the result written into
// `dist` (reshaped) — the allocation-free serving-path variant.
void mahalanobis_distances_into(const linalg::Matrix& x,
                                linalg::Workspace& ws, linalg::Matrix& dist);

// The post-eigendecomposition half of the pipeline: pairwise distances from
// a precomputed whitening factor `w` of cov(x) (linalg::whitening_factor_spd
// or one element of linalg::batched_whitening). mahalanobis_distances_into
// is exactly covariance + whitening + this call; batched plan computation
// uses the split to push many covariances through one shared
// eigendecomposition batch and then finish each table here.
void mahalanobis_from_whitening_into(const linalg::Matrix& x,
                                     const linalg::Matrix& w,
                                     linalg::Workspace& ws,
                                     linalg::Matrix& dist);

// Same, additionally reporting max(dist) — folded into the kernel's
// triangular sweep (kernels::gram_to_dist_max) so the normalize-and-blend
// tail never rescans the matrix. The matrix is symmetric with a zero
// diagonal, so the lower-triangle max equals the full-matrix max the dense
// path scans for: `max_out` is bitwise the same value.
void mahalanobis_from_whitening_max_into(const linalg::Matrix& x,
                                         const linalg::Matrix& w,
                                         linalg::Workspace& ws,
                                         linalg::Matrix& dist,
                                         double& max_out);

// Reference O(n²·d²) implementation (per-pair diffᵀ·pinv(cov)·diff). Kept
// as the equivalence oracle for tests and the before/after benchmark; the
// production path above must agree with it to within factorization rounding.
linalg::Matrix mahalanobis_distances_naive(const linalg::Matrix& x);

// Pairwise Euclidean distances between rows (ablation baseline).
linalg::Matrix euclidean_distances(const linalg::Matrix& x);
void euclidean_distances_into(const linalg::Matrix& x, linalg::Matrix& dist);

// Spacing penalty matrix R'[i,j] = 1 - exp(-lambda * |i - j|).
linalg::Matrix spacing_penalty(std::size_t n, double lambda);

// Final power distance: alpha * feature_distance (normalized to [0, 1] by
// its max) + (1 - alpha) * spacing penalty. The feature distance, max-scan,
// and spacing blend are fused over a single output matrix (the penalty term
// is generated from a per-offset table — no R matrix is materialized).
// Throws std::invalid_argument on an empty table or alpha outside [0, 1].
linalg::Matrix power_distance_matrix(const linalg::Matrix& scaled_features,
                                     const DistanceParams& params);
void power_distance_matrix_into(const linalg::Matrix& scaled_features,
                                const DistanceParams& params,
                                linalg::Workspace& ws, linalg::Matrix& out);

// The normalize-and-blend tail of power_distance_matrix_into: `out` holds a
// raw feature-distance matrix on entry and the final power distance on
// exit. Exposed so the batched path can apply it after computing feature
// distances from a shared whitening batch; power_distance_matrix_into is
// exactly feature distances + this call.
void power_distance_blend_into(const DistanceParams& params,
                               linalg::Workspace& ws, linalg::Matrix& out);

// Fused blend + ε-adjacency emission: same normalize-and-blend sweep as
// power_distance_blend_into (bitwise — `out` is identical), but the kernel
// additionally stamps each blended entry <= eps into a per-row neighbor
// bitmap in the SAME pass, which lands in `adj` as a CSR adjacency — the
// dense matrix is never rescanned to find ε-neighborhoods. `max_d` is the
// max of `out` on entry (from mahalanobis_from_whitening_max_into or an
// explicit scan); the caller supplies it because the fused distance kernels
// already computed it. Requires eps > 0.
void power_distance_blend_adj_into(const DistanceParams& params, double max_d,
                                   double eps, linalg::Workspace& ws,
                                   linalg::Matrix& out, EpsAdjacency& adj);

// power_distance_matrix_into + the fused adjacency epilogue: `out` gets the
// final power-distance matrix and `adj` its ε-threshold CSR adjacency. On
// the Mahalanobis path the whole tail is TRIANGULAR: a prepass folds the
// distance max straight out of the Gram matrix (kernels::gram_dist_max, no
// intermediate matrix), then one fused sweep (kernels::gram_blend_adj)
// writes the blended LOWER triangle + zero diagonal and emits the full
// symmetric ε-bitmap — the mirror half of the matrix is never computed or
// written, which removes the strided transpose traffic that dominated the
// full-matrix pipeline. Contract: out(i, j) for j <= i is bitwise identical
// to the non-adj variant's; the UPPER triangle is unspecified (consumers
// index (max(i,j), min(i,j)) — blended values are symmetric). adj matches
// EpsAdjacency::from_distances on the full symmetric matrix. The Euclidean
// path still materializes the full matrix. The eps-aware cold-plan path:
// DBSCAN's neighborhoods come out of the distance pipeline for free.
void power_distance_matrix_adj_into(const linalg::Matrix& scaled_features,
                                    const DistanceParams& params, double eps,
                                    linalg::Workspace& ws, linalg::Matrix& out,
                                    EpsAdjacency& adj);

// Batched power distances for many scaled feature tables: with the
// Mahalanobis metric, every table's covariance goes through ONE
// linalg::batched_whitening call (shared Jacobi sweep rounds) before each
// table finishes independently; with the Euclidean metric this is a plain
// loop. dists[i] is bitwise identical to power_distance_matrix_into on
// tables[i] — batching changes sharing, never results (test-asserted).
// `tables` and `dists` must be the same length.
void power_distance_matrix_batch_into(
    std::span<const linalg::Matrix* const> tables,
    const DistanceParams& params, linalg::Workspace& ws,
    std::span<linalg::Matrix* const> dists);

// Batched adjacency-emitting variant: the same shared-eigendecomposition
// batching, finishing each table through the fused triangular max + blend
// + adjacency path with its own eps[i] (per-graph hyperparameter
// predictions differ). dists[i] follows power_distance_matrix_adj_into's
// lower-triangle contract (lower half + diagonal bitwise identical to the
// full-matrix pipeline, upper half unspecified on the Mahalanobis path);
// adjs[i] matches EpsAdjacency::from_distances on the full symmetric
// matrix. All spans must be the same length.
void power_distance_matrix_adj_batch_into(
    std::span<const linalg::Matrix* const> tables,
    const DistanceParams& params, std::span<const double> eps,
    linalg::Workspace& ws, std::span<linalg::Matrix* const> dists,
    std::span<EpsAdjacency* const> adjs);

}  // namespace powerlens::clustering
