// DBSCAN over a precomputed distance matrix (Algorithm 1, line 13).
#pragma once

#include "linalg/matrix.hpp"

#include <cstddef>
#include <vector>

namespace powerlens::clustering {

inline constexpr int kNoise = -1;

struct DbscanParams {
  double eps = 0.2;          // neighborhood radius in the power-distance space
  std::size_t min_pts = 3;   // least number of operators per cluster
};

// Returns one label per row of `distances`: 0..k-1 for cluster membership,
// kNoise for noise points. The distance matrix must be square and symmetric.
// Throws std::invalid_argument on a malformed matrix or eps <= 0 /
// min_pts == 0.
std::vector<int> dbscan(const linalg::Matrix& distances,
                        const DbscanParams& params);

}  // namespace powerlens::clustering
