// DBSCAN over a precomputed distance matrix (Algorithm 1, line 13).
//
// Since PR 10 the production path runs over an ε-threshold CSR adjacency
// built in ONE pass over the distance matrix (or fused into the distance
// blend sweep — see clustering/distance.hpp), replacing the per-point O(n)
// neighbor rescans of the dense implementation. Expansion order is
// unchanged — seeds ascend, the frontier is FIFO over first insertions, and
// CSR rows list neighbors in ascending index — so labels are identical to
// the dense-matrix implementation, which is kept as dbscan_reference() and
// property-tested against the CSR path.
#pragma once

#include "linalg/matrix.hpp"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace powerlens::clustering {

inline constexpr int kNoise = -1;

struct DbscanParams {
  double eps = 0.2;          // neighborhood radius in the power-distance space
  std::size_t min_pts = 3;   // least number of operators per cluster
};

// ε-threshold adjacency in CSR form: row i lists every j (self included,
// ascending) with dist(i, j) <= eps. Built once per clustering; DBSCAN's
// neighbor queries become O(degree) row lookups instead of O(n) matrix
// rescans.
struct EpsAdjacency {
  std::size_t n = 0;
  std::vector<std::uint32_t> offsets;    // n + 1 row starts
  std::vector<std::uint32_t> neighbors;  // ascending within each row

  std::size_t degree(std::size_t i) const noexcept {
    return offsets[i + 1] - offsets[i];
  }
  const std::uint32_t* row(std::size_t i) const noexcept {
    return neighbors.data() + offsets[i];
  }

  // One full scan of a symmetric distance matrix — the path for
  // hyperparameter sweeps where eps is not known when the matrix is built.
  // Throws std::invalid_argument on a non-square/empty matrix or eps <= 0.
  static EpsAdjacency from_distances(const linalg::Matrix& distances,
                                     double eps);
  // Assembly from the packed per-row bitmaps the fused blend kernel emits
  // (kernels::dist_blend_adj): bits[i*words + w] bit b set means j =
  // 64*w + b is a neighbor of i. Scanning words ascending yields ascending
  // neighbor order for free.
  static EpsAdjacency from_bitmap(std::size_t n, const std::uint64_t* bits,
                                  std::size_t words,
                                  const std::size_t* degree);
};

// Returns one label per row of `distances`: 0..k-1 for cluster membership,
// kNoise for noise points. The distance matrix must be square and symmetric.
// Throws std::invalid_argument on a malformed matrix or eps <= 0 /
// min_pts == 0. Implemented as from_distances + the CSR overload below.
std::vector<int> dbscan(const linalg::Matrix& distances,
                        const DbscanParams& params);

// CSR fast path: the adjacency already encodes eps, so only min_pts is
// read from `params`. Labels are identical to dbscan_reference on the
// matrix the adjacency was built from (property-tested).
std::vector<int> dbscan(const EpsAdjacency& adjacency,
                        const DbscanParams& params);

// The pre-PR-10 dense-matrix implementation, kept verbatim as the label
// oracle for equivalence tests. O(n) neighbor rescans per expansion and a
// frontier that re-enqueues already-labeled points — do not use on hot
// paths.
std::vector<int> dbscan_reference(const linalg::Matrix& distances,
                                  const DbscanParams& params);

}  // namespace powerlens::clustering
