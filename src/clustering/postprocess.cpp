#include "clustering/postprocess.hpp"

#include "clustering/dbscan.hpp"

#include <stdexcept>

namespace powerlens::clustering {

namespace {

struct Run {
  std::size_t begin;
  std::size_t end;
  int label;
  std::size_t size() const noexcept { return end - begin; }
};

// Mean pairwise distance between the layers of two runs. The power-distance
// matrix is symmetric but the fused adjacency pipeline only materializes its
// lower triangle (upper half unspecified), so always read (max, min).
double run_distance(const Run& a, const Run& b,
                    const linalg::Matrix& distances) {
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = a.begin; i < a.end; ++i) {
    for (std::size_t j = b.begin; j < b.end; ++j) {
      sum += i < j ? distances(j, i) : distances(i, j);
      ++count;
    }
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

}  // namespace

PowerView process_clusters(const std::vector<int>& labels,
                           const linalg::Matrix& distances,
                           const PostprocessParams& params) {
  const std::size_t n = labels.size();
  if (n == 0) throw std::invalid_argument("process_clusters: no labels");
  if (distances.rows() != n || distances.cols() != n) {
    throw std::invalid_argument(
        "process_clusters: distance matrix does not match label count");
  }

  // 1. Contiguity: split the label sequence into maximal equal-label runs.
  std::vector<Run> runs;
  std::size_t start = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    if (i == n || labels[i] != labels[start]) {
      runs.push_back({start, i, labels[start]});
      start = i;
    }
  }

  // 2 + 3. Iteratively merge noise runs and undersized runs into the
  // neighbouring run with the closer mean power distance. Repeats until
  // stable because a merge can push a neighbor above/below the threshold.
  auto needs_merge = [&](const Run& r) {
    return (r.label == kNoise || r.size() < params.min_block_layers) &&
           runs.size() > 1;
  };
  bool changed = true;
  while (changed && runs.size() > 1) {
    changed = false;
    for (std::size_t i = 0; i < runs.size(); ++i) {
      if (!needs_merge(runs[i])) continue;
      std::size_t target;
      if (i == 0) {
        target = 1;
      } else if (i + 1 == runs.size()) {
        target = i - 1;
      } else {
        target = run_distance(runs[i], runs[i - 1], distances) <=
                         run_distance(runs[i], runs[i + 1], distances)
                     ? i - 1
                     : i + 1;
      }
      const std::size_t lo = target < i ? target : i;
      const std::size_t hi = target < i ? i : target;
      runs[lo].end = runs[hi].end;
      // Keep the absorbing run's label unless it was itself noise.
      if (runs[lo].label == kNoise) runs[lo].label = runs[hi].label;
      runs.erase(runs.begin() + static_cast<std::ptrdiff_t>(hi));
      changed = true;
      break;
    }
  }

  // A fully-noise network collapses to one block spanning everything.
  std::vector<PowerBlock> blocks;
  blocks.reserve(runs.size());
  for (const Run& r : runs) blocks.push_back({r.begin, r.end});
  return PowerView(std::move(blocks), n);
}

}  // namespace powerlens::clustering
