// Two-stage MLP: the prediction-model architecture of Figures 3 and 4.
//
// Both the clustering-hyperparameter prediction model and the target-
// frequency decision model share this topology: structural features enter at
// the beginning to "establish a basic understanding of the DNN structure";
// statistics features are injected mid-network "to further enhance the
// prediction accuracy based on the existing structural understanding". The
// head is a classifier (hyperparameter-grid index, or frequency level).
//
// Training is plain backprop with Adam; everything is implemented from
// scratch on the linalg substrate.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/workspace.hpp"

#include <cstdint>
#include <iosfwd>
#include <random>
#include <vector>

namespace powerlens::nn {

// Fully connected layer with optional ReLU and built-in Adam state.
class DenseLayer {
 public:
  DenseLayer(std::size_t in_dim, std::size_t out_dim, bool relu,
             std::mt19937_64& rng);

  // Forward over a (batch x in_dim) matrix; caches activations for backward.
  linalg::Matrix forward(const linalg::Matrix& x);
  // Inference-only forward; no caches touched.
  linalg::Matrix forward_const(const linalg::Matrix& x) const;
  // Same, into a caller-owned (typically Workspace-pooled) matrix. The
  // affine product and the ReLU are fused into one kernel pass.
  void forward_const_into(const linalg::Matrix& x, linalg::Matrix& out) const;

  // Backward from (batch x out_dim) gradient; accumulates weight grads and
  // returns the gradient w.r.t. the input.
  linalg::Matrix backward(const linalg::Matrix& grad_out);

  // One Adam update using the accumulated gradients, then clears them.
  void adam_step(double lr, double beta1, double beta2, double eps,
                 std::int64_t t);

  // Data-parallel training support: replicas copy the master's parameters,
  // accumulate shard gradients independently, and the master sums them back
  // in a fixed order before its Adam step.
  void copy_weights_from(const DenseLayer& src);     // w, b only
  void add_gradients_from(const DenseLayer& src);    // grad_w, grad_b +=
  void zero_gradients();

  std::size_t in_dim() const noexcept { return w_.cols(); }
  std::size_t out_dim() const noexcept { return w_.rows(); }
  const linalg::Matrix& weights() const noexcept { return w_; }

  // Text serialization (weights, bias, ReLU flag, Adam moments).
  void save(std::ostream& os) const;
  static DenseLayer load(std::istream& is);

 private:
  DenseLayer() = default;  // for load()
  // out = x·wᵀ + b via the fused kernel, optionally with the ReLU epilogue.
  void affine_into(const linalg::Matrix& x, linalg::Matrix& out,
                   bool relu) const;

  linalg::Matrix w_;          // out x in
  std::vector<double> b_;     // out
  bool relu_ = false;

  linalg::Matrix grad_w_;
  std::vector<double> grad_b_;
  linalg::Matrix m_w_, v_w_;  // Adam moments
  std::vector<double> m_b_, v_b_;

  linalg::Matrix last_x_;
  linalg::Matrix last_pre_;   // pre-activation, needed for the ReLU mask
};

struct TwoStageMlpConfig {
  std::size_t structural_dim = 0;
  std::size_t statistics_dim = 0;
  std::size_t hidden1 = 64;
  std::size_t hidden2 = 64;
  std::size_t hidden3 = 64;
  std::size_t num_classes = 0;
  std::uint64_t seed = 1;
};

class TwoStageMlp {
 public:
  explicit TwoStageMlp(const TwoStageMlpConfig& config);

  // Logits for a batch: `structural` is (batch x structural_dim),
  // `statistics` is (batch x statistics_dim).
  linalg::Matrix forward(const linalg::Matrix& structural,
                         const linalg::Matrix& statistics);
  linalg::Matrix forward_const(const linalg::Matrix& structural,
                               const linalg::Matrix& statistics) const;
  // Allocation-free inference: every intermediate activation is leased from
  // `ws` and the logits land in `logits` (reshaped). After the workspace has
  // warmed up on a batch shape, repeated calls do no heap traffic.
  void forward_const_into(const linalg::Matrix& structural,
                          const linalg::Matrix& statistics,
                          linalg::Workspace& ws, linalg::Matrix& logits) const;

  // Backward from d(loss)/d(logits); input gradients are discarded.
  void backward(const linalg::Matrix& grad_logits);

  void adam_step(double lr, double beta1, double beta2, double eps);

  // Data-parallel training support (see DenseLayer). Topologies must match;
  // throws std::invalid_argument otherwise.
  void sync_weights_from(const TwoStageMlp& master);
  void add_gradients_from(const TwoStageMlp& replica);
  void zero_gradients();

  // Predicted class per row.
  std::vector<int> predict(const linalg::Matrix& structural,
                           const linalg::Matrix& statistics) const;
  // Single-sample class prediction on the workspace path (serving hot loop):
  // both inputs are 1-row matrices; returns the argmax of the logits row.
  int predict_one(const linalg::Matrix& structural,
                  const linalg::Matrix& statistics,
                  linalg::Workspace& ws) const;

  const TwoStageMlpConfig& config() const noexcept { return config_; }

  // Text serialization of the full model (topology + all four layers).
  void save(std::ostream& os) const;
  static TwoStageMlp load(std::istream& is);

 private:
  TwoStageMlpConfig config_;
  std::mt19937_64 rng_;  // must precede the layers: they draw init weights
  DenseLayer stage1_a_;  // structural -> hidden1
  DenseLayer stage1_b_;  // hidden1 -> hidden2
  DenseLayer stage2_a_;  // hidden2 + statistics -> hidden3
  DenseLayer head_;      // hidden3 -> classes
  std::int64_t adam_t_ = 0;
};

}  // namespace powerlens::nn
