#include "nn/serialize.hpp"

#include <iomanip>
#include <istream>
#include <limits>
#include <locale>
#include <ostream>
#include <stdexcept>
#include <string>

namespace powerlens::nn {

namespace {

void expect_tag(std::istream& is, std::string_view tag) {
  // Model files are written in the classic "C" locale; a process-global
  // locale with grouping separators or an alternate decimal point would
  // otherwise silently corrupt numeric formatting both ways.
  is.imbue(std::locale::classic());
  std::string got;
  if (!(is >> got) || got != tag) {
    throw std::runtime_error("serialize: expected tag '" + std::string(tag) +
                             "', got '" + got + "'");
  }
}

void set_full_precision(std::ostream& os) {
  os.imbue(std::locale::classic());
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
}

}  // namespace

void write_matrix(std::ostream& os, std::string_view tag,
                  const linalg::Matrix& m) {
  set_full_precision(os);
  os << tag << ' ' << m.rows() << ' ' << m.cols();
  for (double v : m.data()) os << ' ' << v;
  os << '\n';
}

linalg::Matrix read_matrix(std::istream& is, std::string_view tag) {
  expect_tag(is, tag);
  std::size_t rows = 0;
  std::size_t cols = 0;
  if (!(is >> rows >> cols)) {
    throw std::runtime_error("serialize: bad matrix header for '" +
                             std::string(tag) + "'");
  }
  linalg::Matrix m(rows, cols);
  for (double& v : m.data()) {
    if (!(is >> v)) {
      throw std::runtime_error("serialize: truncated matrix '" +
                               std::string(tag) + "'");
    }
  }
  return m;
}

void write_vector(std::ostream& os, std::string_view tag,
                  std::span<const double> v) {
  set_full_precision(os);
  os << tag << ' ' << v.size();
  for (double x : v) os << ' ' << x;
  os << '\n';
}

std::vector<double> read_vector(std::istream& is, std::string_view tag) {
  expect_tag(is, tag);
  std::size_t n = 0;
  if (!(is >> n)) {
    throw std::runtime_error("serialize: bad vector header for '" +
                             std::string(tag) + "'");
  }
  std::vector<double> v(n);
  for (double& x : v) {
    if (!(is >> x)) {
      throw std::runtime_error("serialize: truncated vector '" +
                               std::string(tag) + "'");
    }
  }
  return v;
}

void write_scalar(std::ostream& os, std::string_view tag, long long value) {
  os.imbue(std::locale::classic());
  os << tag << ' ' << value << '\n';
}

long long read_scalar(std::istream& is, std::string_view tag) {
  expect_tag(is, tag);
  long long v = 0;
  if (!(is >> v)) {
    throw std::runtime_error("serialize: bad scalar '" + std::string(tag) +
                             "'");
  }
  return v;
}

}  // namespace powerlens::nn
