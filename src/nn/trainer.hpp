// Training loop, dataset handling, and evaluation for the prediction models
// (paper section 2.2).
//
// The paper's protocol: generated data is "divided into training, validation,
// and test sets in an 80%-10%-10% ratio"; the models train until convergence
// and report test accuracy (92.6% for the hyperparameter model, 94.2% for the
// decision model) plus the observation that decision-model misses land
// "only one or two levels away" — mean_level_error below measures that.
#pragma once

#include "nn/mlp.hpp"
#include "util/thread_pool.hpp"

#include <array>
#include <cstdint>
#include <vector>

namespace powerlens::nn {

// A labelled two-facet feature dataset (rows aligned across all members).
struct Dataset {
  linalg::Matrix structural;
  linalg::Matrix statistics;
  std::vector<int> labels;

  std::size_t size() const noexcept { return labels.size(); }
  // Throws std::invalid_argument if row counts disagree.
  void validate() const;
  // Row subset in the given order.
  Dataset subset(const std::vector<std::size_t>& indices) const;
  // Same, into a caller-owned dataset whose matrices/labels are reshaped in
  // place — the training loop reuses one scratch Dataset per gradient shard
  // slot so per-minibatch sharding does no heap traffic after warmup.
  void subset_into(const std::vector<std::size_t>& indices,
                   Dataset& out) const;
};

// Deterministic shuffled 80/10/10 split.
struct DatasetSplit {
  Dataset train, val, test;
};
DatasetSplit split_dataset(const Dataset& data, std::uint64_t seed,
                           double train_frac = 0.8, double val_frac = 0.1);

struct TrainConfig {
  int epochs = 60;
  std::size_t batch_size = 64;
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double adam_eps = 1e-8;
  std::uint64_t shuffle_seed = 7;
  // Stop early when validation accuracy has not improved for this many
  // epochs (0 disables).
  int patience = 10;
  // Threads for minibatch gradient accumulation. Each minibatch is cut into
  // fixed-size shards (independent of thread count) whose gradients are
  // computed on model replicas and summed back in shard order, so training
  // is deterministic and invariant to the thread count.
  util::ParallelConfig parallel;
};

struct TrainReport {
  std::vector<double> train_loss;  // per epoch
  std::vector<double> val_accuracy;
  double best_val_accuracy = 0.0;
  int epochs_run = 0;
};

// Fraction of rows predicted correctly.
double accuracy(const TwoStageMlp& model, const Dataset& data);

// Mean |predicted_class - true_class|; meaningful when classes are ordered
// (frequency levels). The paper's "one or two levels away" claim.
double mean_level_error(const TwoStageMlp& model, const Dataset& data);

// Mini-batch Adam training with optional early stopping on validation
// accuracy.
TrainReport train(TwoStageMlp& model, const Dataset& train_set,
                  const Dataset& val_set, const TrainConfig& config);

// Incremental refit: continues training `model` FROM ITS CURRENT WEIGHTS on
// freshly harvested rows (train() already continues rather than
// reinitializing; this entry point adds the split protocol for raw online
// data). `rows` is split 80/20 train/validation by the deterministic
// shuffle of `seed` — no test tranche, since online refits are judged by
// the serving residuals, not a held-out set. Deterministic for a given
// (model state, rows, config, seed) and invariant to thread count and
// kernel dispatch path, like train(). Throws std::invalid_argument on
// fewer than 10 rows.
TrainReport refit(TwoStageMlp& model, const Dataset& rows,
                  const TrainConfig& config, std::uint64_t seed);

}  // namespace powerlens::nn
