// Batch-tensor helpers for the prediction-model trainer.
//
// The prediction models are small MLPs over feature vectors; a (batch x dim)
// linalg::Matrix is the only tensor shape needed. These free functions cover
// the classification head: row-wise softmax, cross-entropy, argmax.
#pragma once

#include "linalg/matrix.hpp"

#include <cstddef>
#include <vector>

namespace powerlens::nn {

// Numerically stable row-wise softmax.
linalg::Matrix softmax_rows(const linalg::Matrix& logits);

// Mean cross-entropy of `probs` (rows already softmaxed) against integer
// labels. Throws std::invalid_argument on size mismatch or labels out of
// range.
double cross_entropy(const linalg::Matrix& probs,
                     const std::vector<int>& labels);

// Gradient of mean cross-entropy w.r.t. logits: (softmax - onehot) / denom.
// `denom` defaults to the row count; data-parallel training passes the FULL
// minibatch size while feeding only its shard of rows, so the shard
// gradients sum to exactly the whole-batch mean gradient.
linalg::Matrix cross_entropy_grad(const linalg::Matrix& probs,
                                  const std::vector<int>& labels,
                                  std::size_t denom = 0);

// Row-wise argmax.
std::vector<int> argmax_rows(const linalg::Matrix& m);

// Horizontal concatenation [a | b]; rows must match.
linalg::Matrix hconcat(const linalg::Matrix& a, const linalg::Matrix& b);
// Same, into a caller-owned (typically Workspace-pooled) matrix; `out` is
// reshaped and must not alias either operand.
void hconcat_into(const linalg::Matrix& a, const linalg::Matrix& b,
                  linalg::Matrix& out);

}  // namespace powerlens::nn
