#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace powerlens::nn {

linalg::Matrix softmax_rows(const linalg::Matrix& logits) {
  linalg::Matrix out(logits.rows(), logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    double mx = logits(r, 0);
    for (std::size_t c = 1; c < logits.cols(); ++c) {
      mx = std::max(mx, logits(r, c));
    }
    double sum = 0.0;
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      out(r, c) = std::exp(logits(r, c) - mx);
      sum += out(r, c);
    }
    for (std::size_t c = 0; c < logits.cols(); ++c) out(r, c) /= sum;
  }
  return out;
}

double cross_entropy(const linalg::Matrix& probs,
                     const std::vector<int>& labels) {
  if (labels.size() != probs.rows()) {
    throw std::invalid_argument("cross_entropy: label count mismatch");
  }
  double loss = 0.0;
  for (std::size_t r = 0; r < probs.rows(); ++r) {
    const int y = labels[r];
    if (y < 0 || static_cast<std::size_t>(y) >= probs.cols()) {
      throw std::invalid_argument("cross_entropy: label out of range");
    }
    loss -= std::log(std::max(probs(r, static_cast<std::size_t>(y)), 1e-12));
  }
  return loss / static_cast<double>(probs.rows());
}

linalg::Matrix cross_entropy_grad(const linalg::Matrix& probs,
                                  const std::vector<int>& labels,
                                  std::size_t denom) {
  if (labels.size() != probs.rows()) {
    throw std::invalid_argument("cross_entropy_grad: label count mismatch");
  }
  if (denom == 0) denom = probs.rows();
  linalg::Matrix g = probs;
  const double inv_batch = 1.0 / static_cast<double>(denom);
  for (std::size_t r = 0; r < probs.rows(); ++r) {
    g(r, static_cast<std::size_t>(labels[r])) -= 1.0;
    for (std::size_t c = 0; c < probs.cols(); ++c) g(r, c) *= inv_batch;
  }
  return g;
}

std::vector<int> argmax_rows(const linalg::Matrix& m) {
  std::vector<int> out(m.rows(), 0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < m.cols(); ++c) {
      if (m(r, c) > m(r, best)) best = c;
    }
    out[r] = static_cast<int>(best);
  }
  return out;
}

linalg::Matrix hconcat(const linalg::Matrix& a, const linalg::Matrix& b) {
  linalg::Matrix out;
  hconcat_into(a, b, out);
  return out;
}

void hconcat_into(const linalg::Matrix& a, const linalg::Matrix& b,
                  linalg::Matrix& out) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("hconcat: row count mismatch");
  }
  out.reshape(a.rows(), a.cols() + b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) out(r, c) = a(r, c);
    for (std::size_t c = 0; c < b.cols(); ++c) out(r, a.cols() + c) = b(r, c);
  }
}

}  // namespace powerlens::nn
