#include "nn/trainer.hpp"

#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>

namespace powerlens::nn {

void Dataset::validate() const {
  if (structural.rows() != labels.size() ||
      statistics.rows() != labels.size()) {
    throw std::invalid_argument("Dataset: misaligned rows/labels");
  }
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  validate();
  Dataset out;
  out.structural = linalg::Matrix(indices.size(), structural.cols());
  out.statistics = linalg::Matrix(indices.size(), statistics.cols());
  out.labels.reserve(indices.size());
  for (std::size_t r = 0; r < indices.size(); ++r) {
    const std::size_t src = indices[r];
    if (src >= labels.size()) {
      throw std::out_of_range("Dataset::subset: index out of range");
    }
    for (std::size_t c = 0; c < structural.cols(); ++c) {
      out.structural(r, c) = structural(src, c);
    }
    for (std::size_t c = 0; c < statistics.cols(); ++c) {
      out.statistics(r, c) = statistics(src, c);
    }
    out.labels.push_back(labels[src]);
  }
  return out;
}

DatasetSplit split_dataset(const Dataset& data, std::uint64_t seed,
                           double train_frac, double val_frac) {
  data.validate();
  if (train_frac <= 0.0 || val_frac < 0.0 || train_frac + val_frac >= 1.0) {
    throw std::invalid_argument("split_dataset: bad fractions");
  }
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::mt19937_64 rng(seed);
  std::shuffle(order.begin(), order.end(), rng);

  const auto n = static_cast<double>(data.size());
  const std::size_t n_train = static_cast<std::size_t>(n * train_frac);
  const std::size_t n_val = static_cast<std::size_t>(n * val_frac);

  DatasetSplit s;
  s.train = data.subset({order.begin(), order.begin() + n_train});
  s.val = data.subset(
      {order.begin() + n_train, order.begin() + n_train + n_val});
  s.test = data.subset({order.begin() + n_train + n_val, order.end()});
  return s;
}

double accuracy(const TwoStageMlp& model, const Dataset& data) {
  data.validate();
  if (data.size() == 0) return 0.0;
  const std::vector<int> pred = model.predict(data.structural,
                                              data.statistics);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == data.labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(pred.size());
}

double mean_level_error(const TwoStageMlp& model, const Dataset& data) {
  data.validate();
  if (data.size() == 0) return 0.0;
  const std::vector<int> pred = model.predict(data.structural,
                                              data.statistics);
  double err = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    err += std::abs(pred[i] - data.labels[i]);
  }
  return err / static_cast<double>(pred.size());
}

TrainReport train(TwoStageMlp& model, const Dataset& train_set,
                  const Dataset& val_set, const TrainConfig& config) {
  train_set.validate();
  val_set.validate();
  if (train_set.size() == 0) {
    throw std::invalid_argument("train: empty training set");
  }

  TrainReport report;
  std::mt19937_64 rng(config.shuffle_seed);
  std::vector<std::size_t> order(train_set.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  int epochs_since_best = 0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    double epoch_loss = 0.0;
    std::size_t batches = 0;

    for (std::size_t start = 0; start < order.size();
         start += config.batch_size) {
      const std::size_t end =
          std::min(start + config.batch_size, order.size());
      const Dataset batch = train_set.subset(
          {order.begin() + static_cast<std::ptrdiff_t>(start),
           order.begin() + static_cast<std::ptrdiff_t>(end)});

      const linalg::Matrix logits =
          model.forward(batch.structural, batch.statistics);
      const linalg::Matrix probs = softmax_rows(logits);
      epoch_loss += cross_entropy(probs, batch.labels);
      ++batches;
      model.backward(cross_entropy_grad(probs, batch.labels));
      model.adam_step(config.lr, config.beta1, config.beta2, config.adam_eps);
    }

    report.train_loss.push_back(epoch_loss /
                                static_cast<double>(std::max<std::size_t>(
                                    batches, 1)));
    const double val_acc =
        val_set.size() > 0 ? accuracy(model, val_set) : 0.0;
    report.val_accuracy.push_back(val_acc);
    report.epochs_run = epoch + 1;

    if (val_acc > report.best_val_accuracy) {
      report.best_val_accuracy = val_acc;
      epochs_since_best = 0;
    } else if (config.patience > 0 && ++epochs_since_best >= config.patience) {
      break;
    }
  }
  return report;
}

}  // namespace powerlens::nn
