#include "nn/trainer.hpp"

#include "nn/tensor.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>

namespace powerlens::nn {

void Dataset::validate() const {
  if (structural.rows() != labels.size() ||
      statistics.rows() != labels.size()) {
    throw std::invalid_argument("Dataset: misaligned rows/labels");
  }
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out;
  subset_into(indices, out);
  return out;
}

void Dataset::subset_into(const std::vector<std::size_t>& indices,
                          Dataset& out) const {
  validate();
  out.structural.reshape(indices.size(), structural.cols());
  out.statistics.reshape(indices.size(), statistics.cols());
  out.labels.clear();
  out.labels.reserve(indices.size());
  for (std::size_t r = 0; r < indices.size(); ++r) {
    const std::size_t src = indices[r];
    if (src >= labels.size()) {
      throw std::out_of_range("Dataset::subset: index out of range");
    }
    for (std::size_t c = 0; c < structural.cols(); ++c) {
      out.structural(r, c) = structural(src, c);
    }
    for (std::size_t c = 0; c < statistics.cols(); ++c) {
      out.statistics(r, c) = statistics(src, c);
    }
    out.labels.push_back(labels[src]);
  }
}

DatasetSplit split_dataset(const Dataset& data, std::uint64_t seed,
                           double train_frac, double val_frac) {
  data.validate();
  if (train_frac <= 0.0 || val_frac < 0.0 || train_frac + val_frac >= 1.0) {
    throw std::invalid_argument("split_dataset: bad fractions");
  }
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::mt19937_64 rng(seed);
  std::shuffle(order.begin(), order.end(), rng);

  const auto n = static_cast<double>(data.size());
  const std::size_t n_train = static_cast<std::size_t>(n * train_frac);
  const std::size_t n_val = static_cast<std::size_t>(n * val_frac);

  DatasetSplit s;
  s.train = data.subset({order.begin(), order.begin() + n_train});
  s.val = data.subset(
      {order.begin() + n_train, order.begin() + n_train + n_val});
  s.test = data.subset({order.begin() + n_train + n_val, order.end()});
  return s;
}

double accuracy(const TwoStageMlp& model, const Dataset& data) {
  data.validate();
  if (data.size() == 0) return 0.0;
  const std::vector<int> pred = model.predict(data.structural,
                                              data.statistics);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == data.labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(pred.size());
}

double mean_level_error(const TwoStageMlp& model, const Dataset& data) {
  data.validate();
  if (data.size() == 0) return 0.0;
  const std::vector<int> pred = model.predict(data.structural,
                                              data.statistics);
  double err = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    err += std::abs(pred[i] - data.labels[i]);
  }
  return err / static_cast<double>(pred.size());
}

namespace {

// Rows per gradient shard. Fixed (never derived from the thread count) so
// the shard boundaries — and therefore the floating-point summation order of
// the merged gradient — are identical however many threads run the shards.
constexpr std::size_t kGradShardRows = 8;

}  // namespace

TrainReport train(TwoStageMlp& model, const Dataset& train_set,
                  const Dataset& val_set, const TrainConfig& config) {
  train_set.validate();
  val_set.validate();
  if (train_set.size() == 0) {
    throw std::invalid_argument("train: empty training set");
  }
  if (config.batch_size == 0) {
    throw std::invalid_argument("train: batch_size == 0");
  }

  TrainReport report;
  std::mt19937_64 rng(config.shuffle_seed);
  std::vector<std::size_t> order(train_set.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  // One replica per shard slot of the largest possible minibatch. Replicas
  // re-sync parameters from the master every minibatch and only ever own
  // their shard's activations and gradient accumulators.
  const std::size_t max_shards =
      (std::min(config.batch_size, train_set.size()) + kGradShardRows - 1) /
      kGradShardRows;
  std::vector<TwoStageMlp> replicas(max_shards, model);
  std::vector<double> shard_loss(max_shards, 0.0);
  // Per-shard-slot scratch: row-gathered shard data and index lists live for
  // the whole run and are refilled in place each minibatch, so the steady-
  // state epoch loop does no per-batch heap allocation for sharding.
  std::vector<Dataset> shard_data(max_shards);
  std::vector<std::vector<std::size_t>> shard_indices(max_shards);

  obs::TraceWriter& tw = obs::default_trace();
  obs::MetricsRegistry& metrics = obs::global_metrics();
  obs::Counter& epochs_ctr =
      metrics.counter("powerlens_train_epochs_total", "training epochs run");
  obs::Histogram& epoch_hist = metrics.histogram(
      "powerlens_train_epoch_seconds", obs::default_seconds_buckets(),
      "wall time per training epoch");

  int epochs_since_best = 0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    obs::ScopedSpan epoch_span(
        tw, "epoch", "train",
        {obs::TraceArg::num("epoch", static_cast<double>(epoch))});
    const auto epoch_start = std::chrono::steady_clock::now();
    std::shuffle(order.begin(), order.end(), rng);
    double epoch_loss = 0.0;
    std::size_t batches = 0;

    for (std::size_t start = 0; start < order.size();
         start += config.batch_size) {
      const std::size_t end =
          std::min(start + config.batch_size, order.size());
      const std::size_t batch_rows = end - start;
      const std::size_t shards =
          (batch_rows + kGradShardRows - 1) / kGradShardRows;

      // Shard s owns rows [start + s*kGradShardRows, ...) of the shuffled
      // order; every slot below is written by exactly one shard.
      util::parallel_for(config.parallel, 0, shards, [&](std::size_t s) {
        TwoStageMlp& rep = replicas[s];
        rep.sync_weights_from(model);
        const std::size_t lo = start + s * kGradShardRows;
        const std::size_t hi = std::min(end, lo + kGradShardRows);
        std::vector<std::size_t>& idx = shard_indices[s];
        idx.assign(order.begin() + static_cast<std::ptrdiff_t>(lo),
                   order.begin() + static_cast<std::ptrdiff_t>(hi));
        train_set.subset_into(idx, shard_data[s]);
        const Dataset& shard = shard_data[s];
        const linalg::Matrix logits =
            rep.forward(shard.structural, shard.statistics);
        const linalg::Matrix probs = softmax_rows(logits);
        shard_loss[s] =
            cross_entropy(probs, shard.labels) * static_cast<double>(hi - lo);
        // Scale by the whole minibatch so shard gradients sum to its mean.
        rep.backward(cross_entropy_grad(probs, shard.labels, batch_rows));
      });

      for (std::size_t s = 0; s < shards; ++s) {
        model.add_gradients_from(replicas[s]);
        replicas[s].zero_gradients();
        epoch_loss += shard_loss[s] / static_cast<double>(batch_rows);
      }
      ++batches;
      model.adam_step(config.lr, config.beta1, config.beta2, config.adam_eps);
    }

    report.train_loss.push_back(epoch_loss /
                                static_cast<double>(std::max<std::size_t>(
                                    batches, 1)));
    const double val_acc =
        val_set.size() > 0 ? accuracy(model, val_set) : 0.0;
    report.val_accuracy.push_back(val_acc);
    report.epochs_run = epoch + 1;
    epochs_ctr.inc();
    epoch_hist.observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      epoch_start)
            .count());

    if (val_acc > report.best_val_accuracy) {
      report.best_val_accuracy = val_acc;
      epochs_since_best = 0;
    } else if (config.patience > 0 && ++epochs_since_best >= config.patience) {
      break;
    }
  }
  return report;
}

TrainReport refit(TwoStageMlp& model, const Dataset& rows,
                  const TrainConfig& config, std::uint64_t seed) {
  rows.validate();
  if (rows.size() < 10) {
    throw std::invalid_argument("refit: need at least 10 rows");
  }
  // 80/20 train/validation by one deterministic shuffle; split_dataset's
  // three-way protocol is not reused because online refits carry no test
  // tranche (the serving residuals are the test set).
  std::vector<std::size_t> order(rows.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::mt19937_64 rng(seed);
  std::shuffle(order.begin(), order.end(), rng);
  const std::size_t n_val = std::max<std::size_t>(1, rows.size() / 5);
  const Dataset val = rows.subset({order.begin(), order.begin() + n_val});
  const Dataset train_set = rows.subset({order.begin() + n_val, order.end()});
  return train(model, train_set, val, config);
}

}  // namespace powerlens::nn
