// Plain-text serialization for the trained prediction models.
//
// PowerLens's offline phase is cheap in this repository but expensive on
// real hardware (the paper reports 4.5-26 h of training per platform), so a
// deployment needs to persist the trained models. The format is
// whitespace-separated text with section tags — diff-able, versionable, and
// endianness-free. Full precision (max_digits10) round-trips doubles
// exactly.
#pragma once

#include "linalg/matrix.hpp"

#include <iosfwd>
#include <span>
#include <string_view>
#include <vector>

namespace powerlens::nn {

// Writes/reads a tagged matrix block: "tag rows cols v00 v01 ...".
void write_matrix(std::ostream& os, std::string_view tag,
                  const linalg::Matrix& m);
// Throws std::runtime_error on tag mismatch or malformed input.
linalg::Matrix read_matrix(std::istream& is, std::string_view tag);

// Writes/reads a tagged vector block: "tag n v0 v1 ...".
void write_vector(std::ostream& os, std::string_view tag,
                  std::span<const double> v);
std::vector<double> read_vector(std::istream& is, std::string_view tag);

// Tagged scalar (integral) value.
void write_scalar(std::ostream& os, std::string_view tag, long long value);
long long read_scalar(std::istream& is, std::string_view tag);

}  // namespace powerlens::nn
