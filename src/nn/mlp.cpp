#include "nn/mlp.hpp"

#include "linalg/kernels.hpp"
#include "nn/serialize.hpp"
#include "nn/tensor.hpp"

#include <cmath>
#include <stdexcept>

namespace powerlens::nn {

DenseLayer::DenseLayer(std::size_t in_dim, std::size_t out_dim, bool relu,
                       std::mt19937_64& rng)
    : w_(out_dim, in_dim),
      b_(out_dim, 0.0),
      relu_(relu),
      grad_w_(out_dim, in_dim),
      grad_b_(out_dim, 0.0),
      m_w_(out_dim, in_dim),
      v_w_(out_dim, in_dim),
      m_b_(out_dim, 0.0),
      v_b_(out_dim, 0.0) {
  if (in_dim == 0 || out_dim == 0) {
    throw std::invalid_argument("DenseLayer: zero dimension");
  }
  // He initialization, right for the ReLU stages and harmless for the head.
  std::normal_distribution<double> dist(
      0.0, std::sqrt(2.0 / static_cast<double>(in_dim)));
  for (double& v : w_.data()) v = dist(rng);
}

void DenseLayer::affine_into(const linalg::Matrix& x, linalg::Matrix& out,
                             bool relu) const {
  if (x.cols() != w_.cols()) {
    throw std::invalid_argument("DenseLayer: input dimension mismatch");
  }
  out.reshape(x.rows(), w_.rows());
  linalg::kernels::affine(x.rows(), w_.rows(), w_.cols(), x.data().data(),
                          x.cols(), w_.data().data(), w_.cols(), b_.data(),
                          out.data().data(), out.cols(), relu);
}

linalg::Matrix DenseLayer::forward(const linalg::Matrix& x) {
  last_x_ = x;
  affine_into(x, last_pre_, false);
  if (!relu_) return last_pre_;
  linalg::Matrix out = last_pre_;
  for (double& v : out.data()) v = v > 0.0 ? v : 0.0;
  return out;
}

linalg::Matrix DenseLayer::forward_const(const linalg::Matrix& x) const {
  linalg::Matrix out;
  affine_into(x, out, relu_);
  return out;
}

void DenseLayer::forward_const_into(const linalg::Matrix& x,
                                    linalg::Matrix& out) const {
  affine_into(x, out, relu_);
}

linalg::Matrix DenseLayer::backward(const linalg::Matrix& grad_out) {
  if (grad_out.rows() != last_x_.rows() || grad_out.cols() != w_.rows()) {
    throw std::invalid_argument("DenseLayer::backward: shape mismatch");
  }
  linalg::Matrix g = grad_out;
  if (relu_) {
    for (std::size_t r = 0; r < g.rows(); ++r) {
      for (std::size_t c = 0; c < g.cols(); ++c) {
        if (last_pre_(r, c) <= 0.0) g(r, c) = 0.0;
      }
    }
  }
  // grad_w += gᵀ x ; grad_b += column sums of g ; grad_in = g w. The kernels
  // walk the batch/output dimension in the same ascending order as the old
  // per-element loops; the one intentional change is dropping the old
  // `go == 0.0` skip branches, which silently turned ±0 and signed-zero
  // products into "no-op adds" (adding 0.0 never changes a finite sum, but
  // the branch cost a mispredict per ReLU-masked element).
  linalg::kernels::matmul_tn_into(g, last_x_, grad_w_, /*accumulate=*/true);
  linalg::kernels::col_sums(g.rows(), g.cols(), g.data().data(), g.cols(),
                            grad_b_.data(), /*accumulate=*/true);
  return linalg::kernels::matmul(g, w_);
}

void DenseLayer::adam_step(double lr, double beta1, double beta2, double eps,
                           std::int64_t t) {
  const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(t));
  const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(t));
  auto update = [&](double& param, double& m, double& v, double g) {
    m = beta1 * m + (1.0 - beta1) * g;
    v = beta2 * v + (1.0 - beta2) * g * g;
    param -= lr * (m / bc1) / (std::sqrt(v / bc2) + eps);
  };
  auto wd = w_.data();
  auto gw = grad_w_.data();
  auto mw = m_w_.data();
  auto vw = v_w_.data();
  for (std::size_t i = 0; i < wd.size(); ++i) {
    update(wd[i], mw[i], vw[i], gw[i]);
    gw[i] = 0.0;
  }
  for (std::size_t i = 0; i < b_.size(); ++i) {
    update(b_[i], m_b_[i], v_b_[i], grad_b_[i]);
    grad_b_[i] = 0.0;
  }
}

void DenseLayer::copy_weights_from(const DenseLayer& src) {
  if (src.w_.rows() != w_.rows() || src.w_.cols() != w_.cols()) {
    throw std::invalid_argument("DenseLayer::copy_weights_from: shape");
  }
  w_ = src.w_;
  b_ = src.b_;
}

void DenseLayer::add_gradients_from(const DenseLayer& src) {
  if (src.grad_w_.rows() != grad_w_.rows() ||
      src.grad_w_.cols() != grad_w_.cols()) {
    throw std::invalid_argument("DenseLayer::add_gradients_from: shape");
  }
  grad_w_ += src.grad_w_;
  for (std::size_t i = 0; i < grad_b_.size(); ++i) {
    grad_b_[i] += src.grad_b_[i];
  }
}

void DenseLayer::zero_gradients() {
  for (double& v : grad_w_.data()) v = 0.0;
  for (double& v : grad_b_) v = 0.0;
}

TwoStageMlp::TwoStageMlp(const TwoStageMlpConfig& config)
    : config_(config),
      rng_([&] {
        if (config.structural_dim == 0 || config.statistics_dim == 0 ||
            config.num_classes == 0) {
          throw std::invalid_argument("TwoStageMlp: zero dimension");
        }
        return config.seed;
      }()),
      stage1_a_(config.structural_dim, config.hidden1, true, rng_),
      stage1_b_(config.hidden1, config.hidden2, true, rng_),
      stage2_a_(config.hidden2 + config.statistics_dim, config.hidden3, true,
                rng_),
      head_(config.hidden3, config.num_classes, false, rng_) {}

linalg::Matrix TwoStageMlp::forward(const linalg::Matrix& structural,
                                    const linalg::Matrix& statistics) {
  const linalg::Matrix h1 = stage1_a_.forward(structural);
  const linalg::Matrix h2 = stage1_b_.forward(h1);
  const linalg::Matrix mid = hconcat(h2, statistics);
  const linalg::Matrix h3 = stage2_a_.forward(mid);
  return head_.forward(h3);
}

linalg::Matrix TwoStageMlp::forward_const(
    const linalg::Matrix& structural, const linalg::Matrix& statistics) const {
  const linalg::Matrix h1 = stage1_a_.forward_const(structural);
  const linalg::Matrix h2 = stage1_b_.forward_const(h1);
  const linalg::Matrix mid = hconcat(h2, statistics);
  const linalg::Matrix h3 = stage2_a_.forward_const(mid);
  return head_.forward_const(h3);
}

void TwoStageMlp::forward_const_into(const linalg::Matrix& structural,
                                     const linalg::Matrix& statistics,
                                     linalg::Workspace& ws,
                                     linalg::Matrix& logits) const {
  const std::size_t batch = structural.rows();
  linalg::Workspace::Lease h1 = ws.lease(batch, config_.hidden1);
  stage1_a_.forward_const_into(structural, *h1);
  linalg::Workspace::Lease h2 = ws.lease(batch, config_.hidden2);
  stage1_b_.forward_const_into(*h1, *h2);
  linalg::Workspace::Lease mid =
      ws.lease(batch, config_.hidden2 + config_.statistics_dim);
  hconcat_into(*h2, statistics, *mid);
  linalg::Workspace::Lease h3 = ws.lease(batch, config_.hidden3);
  stage2_a_.forward_const_into(*mid, *h3);
  head_.forward_const_into(*h3, logits);
}

void TwoStageMlp::backward(const linalg::Matrix& grad_logits) {
  const linalg::Matrix g3 = head_.backward(grad_logits);
  const linalg::Matrix g_mid = stage2_a_.backward(g3);
  // Split the mid gradient: first hidden2 columns flow back to stage 1; the
  // statistics columns are raw inputs with no upstream parameters.
  linalg::Matrix g2(g_mid.rows(), config_.hidden2);
  for (std::size_t r = 0; r < g_mid.rows(); ++r) {
    for (std::size_t c = 0; c < config_.hidden2; ++c) g2(r, c) = g_mid(r, c);
  }
  const linalg::Matrix g1 = stage1_b_.backward(g2);
  stage1_a_.backward(g1);
}

void TwoStageMlp::adam_step(double lr, double beta1, double beta2,
                            double eps) {
  ++adam_t_;
  stage1_a_.adam_step(lr, beta1, beta2, eps, adam_t_);
  stage1_b_.adam_step(lr, beta1, beta2, eps, adam_t_);
  stage2_a_.adam_step(lr, beta1, beta2, eps, adam_t_);
  head_.adam_step(lr, beta1, beta2, eps, adam_t_);
}

void TwoStageMlp::sync_weights_from(const TwoStageMlp& master) {
  stage1_a_.copy_weights_from(master.stage1_a_);
  stage1_b_.copy_weights_from(master.stage1_b_);
  stage2_a_.copy_weights_from(master.stage2_a_);
  head_.copy_weights_from(master.head_);
}

void TwoStageMlp::add_gradients_from(const TwoStageMlp& replica) {
  stage1_a_.add_gradients_from(replica.stage1_a_);
  stage1_b_.add_gradients_from(replica.stage1_b_);
  stage2_a_.add_gradients_from(replica.stage2_a_);
  head_.add_gradients_from(replica.head_);
}

void TwoStageMlp::zero_gradients() {
  stage1_a_.zero_gradients();
  stage1_b_.zero_gradients();
  stage2_a_.zero_gradients();
  head_.zero_gradients();
}

std::vector<int> TwoStageMlp::predict(const linalg::Matrix& structural,
                                      const linalg::Matrix& statistics) const {
  return argmax_rows(forward_const(structural, statistics));
}

int TwoStageMlp::predict_one(const linalg::Matrix& structural,
                             const linalg::Matrix& statistics,
                             linalg::Workspace& ws) const {
  linalg::Workspace::Lease logits = ws.lease(1, config_.num_classes);
  forward_const_into(structural, statistics, ws, *logits);
  std::size_t best = 0;
  for (std::size_t c = 1; c < logits->cols(); ++c) {
    if ((*logits)(0, c) > (*logits)(0, best)) best = c;
  }
  return static_cast<int>(best);
}

void DenseLayer::save(std::ostream& os) const {
  write_scalar(os, "relu", relu_ ? 1 : 0);
  write_matrix(os, "w", w_);
  write_vector(os, "b", b_);
  write_matrix(os, "m_w", m_w_);
  write_matrix(os, "v_w", v_w_);
  write_vector(os, "m_b", m_b_);
  write_vector(os, "v_b", v_b_);
}

DenseLayer DenseLayer::load(std::istream& is) {
  DenseLayer l;
  l.relu_ = read_scalar(is, "relu") != 0;
  l.w_ = read_matrix(is, "w");
  l.b_ = read_vector(is, "b");
  l.m_w_ = read_matrix(is, "m_w");
  l.v_w_ = read_matrix(is, "v_w");
  l.m_b_ = read_vector(is, "m_b");
  l.v_b_ = read_vector(is, "v_b");
  if (l.w_.rows() != l.b_.size() || l.m_w_.rows() != l.w_.rows() ||
      l.v_w_.cols() != l.w_.cols()) {
    throw std::runtime_error("DenseLayer::load: inconsistent shapes");
  }
  l.grad_w_ = linalg::Matrix(l.w_.rows(), l.w_.cols());
  l.grad_b_.assign(l.b_.size(), 0.0);
  return l;
}

void TwoStageMlp::save(std::ostream& os) const {
  write_scalar(os, "structural_dim",
               static_cast<long long>(config_.structural_dim));
  write_scalar(os, "statistics_dim",
               static_cast<long long>(config_.statistics_dim));
  write_scalar(os, "hidden1", static_cast<long long>(config_.hidden1));
  write_scalar(os, "hidden2", static_cast<long long>(config_.hidden2));
  write_scalar(os, "hidden3", static_cast<long long>(config_.hidden3));
  write_scalar(os, "num_classes",
               static_cast<long long>(config_.num_classes));
  write_scalar(os, "adam_t", adam_t_);
  stage1_a_.save(os);
  stage1_b_.save(os);
  stage2_a_.save(os);
  head_.save(os);
}

TwoStageMlp TwoStageMlp::load(std::istream& is) {
  TwoStageMlpConfig cfg;
  cfg.structural_dim =
      static_cast<std::size_t>(read_scalar(is, "structural_dim"));
  cfg.statistics_dim =
      static_cast<std::size_t>(read_scalar(is, "statistics_dim"));
  cfg.hidden1 = static_cast<std::size_t>(read_scalar(is, "hidden1"));
  cfg.hidden2 = static_cast<std::size_t>(read_scalar(is, "hidden2"));
  cfg.hidden3 = static_cast<std::size_t>(read_scalar(is, "hidden3"));
  cfg.num_classes = static_cast<std::size_t>(read_scalar(is, "num_classes"));
  TwoStageMlp m(cfg);
  m.adam_t_ = read_scalar(is, "adam_t");
  m.stage1_a_ = DenseLayer::load(is);
  m.stage1_b_ = DenseLayer::load(is);
  m.stage2_a_ = DenseLayer::load(is);
  m.head_ = DenseLayer::load(is);
  if (m.stage1_a_.in_dim() != cfg.structural_dim ||
      m.head_.out_dim() != cfg.num_classes) {
    throw std::runtime_error("TwoStageMlp::load: topology mismatch");
  }
  return m;
}

}  // namespace powerlens::nn
