#include "io/mmap_file.hpp"

#include "io/binary.hpp"

#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define POWERLENS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define POWERLENS_HAVE_MMAP 0
#endif

namespace powerlens::io {

MappedFile::MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
  reset();
  heap_ = std::move(other.heap_);
  data_ = other.data_;
  size_ = other.size_;
  mapped_ = other.mapped_;
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  return *this;
}

MappedFile::~MappedFile() { reset(); }

void MappedFile::reset() noexcept {
#if POWERLENS_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  heap_.clear();
}

MappedFile MappedFile::map(const std::string& path, bool allow_mmap) {
  MappedFile out;
#if POWERLENS_HAVE_MMAP
  if (allow_mmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      throw std::runtime_error("io: cannot open '" + path + "'");
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      throw std::runtime_error("io: cannot stat '" + path + "'");
    }
    const std::size_t size = static_cast<std::size_t>(st.st_size);
    if (size > 0) {
      void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (addr == MAP_FAILED) {
        throw std::runtime_error("io: mmap of '" + path + "' failed");
      }
      out.data_ = static_cast<const std::byte*>(addr);
      out.size_ = size;
      out.mapped_ = true;
      return out;
    }
    ::close(fd);
    return out;  // empty file: nothing to map
  }
#else
  (void)allow_mmap;
#endif
  out.heap_ = read_file(path);
  out.data_ = out.heap_.data();
  out.size_ = out.heap_.size();
  out.mapped_ = false;
  return out;
}

}  // namespace powerlens::io
