// Byte-level primitives of the PowerLens binary interchange (.plbin).
//
// The wire format is pinned, not host-defined:
//   - every multi-byte integer is little-endian, assembled/split by explicit
//     shifts (no memcpy of host-order structs), so files written on any host
//     read back identically on any other;
//   - doubles travel as the IEEE-754 bit pattern in a little-endian u64
//     (std::bit_cast both ways), making round-trips bitwise exact;
//   - every record is length-prefixed and carries an FNV-1a checksum of its
//     payload. FNV-1a's per-byte step (h ^ b) * prime is a bijection on
//     u64, so *any* single-byte change to a payload is guaranteed — not just
//     likely — to change the checksum; the corruption gauntlet leans on
//     this.
//
// Record layout (header is kHeaderSize = 24 bytes):
//   offset  size  field
//        0     4  magic "PLBN"
//        4     2  format version (u16, currently 1)
//        6     2  record type (u16, RecordType)
//        8     8  payload size in bytes (u64)
//       16     8  FNV-1a-64 checksum of the payload bytes (u64)
//       24     -  payload
//
// Readers validate strictly in this order: magic, version, record type,
// payload bounds, checksum — each failure mapped to its io::Error subclass
// (error.hpp). Only a checksum-valid payload is ever decoded.
#pragma once

#include "io/error.hpp"

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace powerlens::io {

inline constexpr std::array<unsigned char, 4> kMagic{'P', 'L', 'B', 'N'};
inline constexpr std::uint16_t kFormatVersion = 1;
inline constexpr std::size_t kHeaderSize = 24;
// Cost-table payloads align their prefix-sum arrays to this boundary
// (relative to the start of the file) so loads can be zero-copy mmap.
inline constexpr std::size_t kPageAlign = 4096;

enum class RecordType : std::uint16_t {
  kGraph = 1,
  kPlan = 2,
  kCostTable = 3,
};

const char* record_type_name(RecordType type) noexcept;

// FNV-1a 64-bit over a byte range (offset basis 14695981039346656037).
std::uint64_t fnv1a(std::span<const std::byte> bytes) noexcept;

// Append-only little-endian payload builder.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);  // two's-complement u64
  void f64(double v);        // IEEE-754 bit pattern
  // u32 byte length + raw bytes (no terminator).
  void str(std::string_view s);
  void bytes(std::span<const std::byte> b);
  // Zero-pads so that (file_base + size()) is a multiple of `align`.
  // `file_base` is the payload's absolute offset in the final file.
  void pad_to(std::size_t align, std::size_t file_base);

  std::size_t size() const noexcept { return buf_.size(); }
  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

// Bounds-checked little-endian reader; every overrun throws TruncatedError.
class Cursor {
 public:
  explicit Cursor(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  std::string str();
  std::span<const std::byte> bytes(std::size_t n);
  // Skips padding so that (file_base + offset()) is a multiple of `align`.
  void skip_to(std::size_t align, std::size_t file_base);

  // Reads a u64 element count and rejects counts that could not possibly
  // fit in the remaining bytes at `min_bytes_each` per element — the guard
  // that keeps a forged length field from triggering a huge allocation.
  std::uint64_t count(std::size_t min_bytes_each);

  std::size_t offset() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  // Throws MalformedError unless every payload byte was consumed.
  void expect_done(std::string_view what) const;

 private:
  void need(std::size_t n) const;

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

// Wraps `payload` in a checksummed record: header + payload bytes.
std::vector<std::byte> frame_record(RecordType type,
                                    std::vector<std::byte> payload);

struct RecordView {
  RecordType type = RecordType::kGraph;
  std::span<const std::byte> payload;
  std::size_t total_size = 0;  // header + payload, for multi-record files
};

// Validates the record at the head of `data` (magic, version, bounds,
// checksum) and returns a view of its payload. Trailing bytes after the
// record are allowed (multi-record streams); the caller advances by
// `total_size`.
RecordView parse_record(std::span<const std::byte> data);
// As above, but additionally requires the record type.
RecordView parse_record(std::span<const std::byte> data, RecordType expected);

// Whole-file helpers. read_file throws std::runtime_error when the path
// cannot be opened (a missing file is an environment error, not bit rot).
std::vector<std::byte> read_file(const std::string& path);
void write_file(const std::string& path, std::span<const std::byte> bytes);

}  // namespace powerlens::io
