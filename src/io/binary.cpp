#include "io/binary.hpp"

#include <bit>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace powerlens::io {

const char* record_type_name(RecordType type) noexcept {
  switch (type) {
    case RecordType::kGraph: return "graph";
    case RecordType::kPlan: return "plan";
    case RecordType::kCostTable: return "cost_table";
  }
  return "unknown";
}

std::uint64_t fnv1a(std::span<const std::byte> bytes) noexcept {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::byte b : bytes) {
    h = (h ^ static_cast<std::uint64_t>(std::to_integer<unsigned char>(b))) *
        1099511628211ULL;
  }
  return h;
}

// --- Writer ---

void Writer::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void Writer::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void Writer::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::str(std::string_view s) {
  if (s.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("io::Writer: string too long");
  }
  u32(static_cast<std::uint32_t>(s.size()));
  for (char c : s) buf_.push_back(static_cast<std::byte>(c));
}

void Writer::bytes(std::span<const std::byte> b) {
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void Writer::pad_to(std::size_t align, std::size_t file_base) {
  while ((file_base + buf_.size()) % align != 0) {
    buf_.push_back(std::byte{0});
  }
}

// --- Cursor ---

void Cursor::need(std::size_t n) const {
  if (remaining() < n) {
    throw TruncatedError("need " + std::to_string(n) + " bytes at offset " +
                         std::to_string(pos_) + ", have " +
                         std::to_string(remaining()));
  }
}

std::uint8_t Cursor::u8() {
  need(1);
  return std::to_integer<std::uint8_t>(data_[pos_++]);
}

std::uint16_t Cursor::u16() {
  const std::uint16_t lo = u8();
  const std::uint16_t hi = u8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t Cursor::u32() {
  const std::uint32_t lo = u16();
  const std::uint32_t hi = u16();
  return lo | (hi << 16);
}

std::uint64_t Cursor::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

std::int64_t Cursor::i64() { return static_cast<std::int64_t>(u64()); }

double Cursor::f64() { return std::bit_cast<double>(u64()); }

std::string Cursor::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(n, '\0');
  for (std::uint32_t i = 0; i < n; ++i) {
    s[i] = static_cast<char>(std::to_integer<unsigned char>(data_[pos_ + i]));
  }
  pos_ += n;
  return s;
}

std::span<const std::byte> Cursor::bytes(std::size_t n) {
  need(n);
  const std::span<const std::byte> out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

void Cursor::skip_to(std::size_t align, std::size_t file_base) {
  while ((file_base + pos_) % align != 0) {
    need(1);
    ++pos_;
  }
}

std::uint64_t Cursor::count(std::size_t min_bytes_each) {
  const std::uint64_t n = u64();
  if (min_bytes_each == 0) min_bytes_each = 1;
  if (n > remaining() / min_bytes_each) {
    throw TruncatedError("count " + std::to_string(n) +
                         " cannot fit in remaining " +
                         std::to_string(remaining()) + " bytes");
  }
  return n;
}

void Cursor::expect_done(std::string_view what) const {
  if (remaining() != 0) {
    throw MalformedError(std::string(what) + ": " +
                         std::to_string(remaining()) +
                         " unconsumed payload bytes");
  }
}

// --- Record framing ---

std::vector<std::byte> frame_record(RecordType type,
                                    std::vector<std::byte> payload) {
  const std::uint64_t checksum = fnv1a(payload);
  Writer header;
  for (unsigned char m : kMagic) header.u8(m);
  header.u16(kFormatVersion);
  header.u16(static_cast<std::uint16_t>(type));
  header.u64(payload.size());
  header.u64(checksum);
  std::vector<std::byte> out = header.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

RecordView parse_record(std::span<const std::byte> data) {
  if (data.size() < kMagic.size()) {
    throw TruncatedError("file shorter than the magic");
  }
  for (std::size_t i = 0; i < kMagic.size(); ++i) {
    if (std::to_integer<unsigned char>(data[i]) != kMagic[i]) {
      throw BadMagicError("not a .plbin record");
    }
  }
  if (data.size() < kHeaderSize) {
    throw TruncatedError("file shorter than the record header");
  }
  Cursor header(data.subspan(kMagic.size(), kHeaderSize - kMagic.size()));
  const std::uint16_t version = header.u16();
  if (version != kFormatVersion) {
    throw VersionMismatchError("format version " + std::to_string(version) +
                               ", reader speaks " +
                               std::to_string(kFormatVersion));
  }
  const std::uint16_t raw_type = header.u16();
  if (raw_type != static_cast<std::uint16_t>(RecordType::kGraph) &&
      raw_type != static_cast<std::uint16_t>(RecordType::kPlan) &&
      raw_type != static_cast<std::uint16_t>(RecordType::kCostTable)) {
    throw WrongRecordTypeError("unknown record type " +
                               std::to_string(raw_type));
  }
  const std::uint64_t payload_size = header.u64();
  const std::uint64_t checksum = header.u64();
  if (payload_size > data.size() - kHeaderSize) {
    throw TruncatedError("payload of " + std::to_string(payload_size) +
                         " bytes, only " +
                         std::to_string(data.size() - kHeaderSize) +
                         " available");
  }
  RecordView view;
  view.type = static_cast<RecordType>(raw_type);
  view.payload = data.subspan(kHeaderSize, payload_size);
  view.total_size = kHeaderSize + payload_size;
  if (fnv1a(view.payload) != checksum) {
    throw ChecksumMismatchError("payload hash does not match the header");
  }
  return view;
}

RecordView parse_record(std::span<const std::byte> data, RecordType expected) {
  RecordView view = parse_record(data);
  if (view.type != expected) {
    throw WrongRecordTypeError(std::string("expected a ") +
                               record_type_name(expected) + " record, found " +
                               record_type_name(view.type));
  }
  return view;
}

// --- Files ---

std::vector<std::byte> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    throw std::runtime_error("io: cannot open '" + path + "'");
  }
  std::vector<std::byte> bytes;
  std::byte chunk[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    throw std::runtime_error("io: read of '" + path + "' failed");
  }
  return bytes;
}

void write_file(const std::string& path, std::span<const std::byte> bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    throw std::runtime_error("io: cannot open '" + path + "' for writing");
  }
  const std::size_t written =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool failed = std::fclose(f) != 0 || written != bytes.size();
  if (failed) {
    throw std::runtime_error("io: write of '" + path + "' failed");
  }
}

}  // namespace powerlens::io
