// Versioned binary interchange for the three artifacts the offline→serving
// pipeline hands between processes (DESIGN.md §5h):
//
//   - dnn::Graph          — nodes (type, name, shapes, FLOPs/params/bytes,
//                           deep attributes) + producer edge lists;
//   - core::OptimizationPlan — clustering hyperparameters, block boundaries,
//                           per-block frequency levels, the preset schedule,
//                           and the predicted per-pass cost fields, tagged
//                           with the graph signature it was computed for;
//   - hw::CostTable       — the ladder × layer prefix-sum cost grid, written
//                           with its arrays page-aligned so loads can be
//                           zero-copy mmap (heap-read fallback everywhere
//                           else).
//
// Encode/decode work on in-memory byte buffers (what the fuzz harness
// mutates); save/load wrap them in whole-file helpers. Every decoder
// validates magic → version → type → bounds → checksum before touching the
// payload, and converts any structural violation in a checksum-valid
// payload into io::MalformedError — malformed bytes can produce a typed
// error or a value-equal object, never UB.
//
// Compatibility policy: the format version is a single monotonic u16.
// Readers accept exactly the versions they know how to decode (currently
// only kFormatVersion) and reject everything else with VersionMismatchError
// — no silent best-effort parsing of future layouts. Additive evolution
// bumps the version and teaches the reader both layouts.
#pragma once

#include "core/powerlens.hpp"
#include "dnn/graph.hpp"
#include "hw/cost_table.hpp"
#include "io/binary.hpp"
#include "io/mmap_file.hpp"

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace powerlens::io {

// --- Graph records ---

std::vector<std::byte> encode_graph(const dnn::Graph& graph);
dnn::Graph decode_graph(std::span<const std::byte> record);

void save_graph(const std::string& path, const dnn::Graph& graph);
dnn::Graph load_graph(const std::string& path);

// --- Plan records ---

struct PlanRecord {
  // serve::graph_signature of the graph the plan was computed for; 0 for a
  // standalone plan with no provenance.
  std::uint64_t graph_signature = 0;
  core::OptimizationPlan plan;

  bool operator==(const PlanRecord&) const noexcept = default;
};

std::vector<std::byte> encode_plan(const core::OptimizationPlan& plan,
                                   std::uint64_t graph_signature = 0);
PlanRecord decode_plan(std::span<const std::byte> record);

void save_plan(const std::string& path, const core::OptimizationPlan& plan,
               std::uint64_t graph_signature = 0);
PlanRecord load_plan(const std::string& path);

// A plan snapshot is a concatenation of plan records — the PlanCache's
// cross-process warm-start artifact (serve::Server::warm_start_from_snapshot).
void save_plan_snapshot(const std::string& path,
                        std::span<const PlanRecord> records);
std::vector<PlanRecord> load_plan_snapshot(const std::string& path);

// --- Cost-table records ---

// Cost tables are written one per file with the prefix-sum arrays aligned
// to kPageAlign relative to the file start; encode_cost_table therefore
// assumes the record begins at file offset 0.
std::vector<std::byte> encode_cost_table(const hw::CostTable& table);
// Heap decode: the returned table owns copies of the arrays.
hw::CostTable decode_cost_table(std::span<const std::byte> record);

void save_cost_table(const std::string& path, const hw::CostTable& table);

// Zero-copy load: mmaps the file, validates the record, and — when the host
// is little-endian and the arrays landed aligned — returns a table whose
// prefix arrays point straight into the mapping (`mmapped = true`; keep
// `mapping` alive as long as `table`). Otherwise, or with
// `allow_mmap = false`, falls back to an owning heap read.
struct LoadedCostTable {
  hw::CostTable table;
  MappedFile mapping;
  bool mmapped = false;
};
LoadedCostTable load_cost_table(const std::string& path,
                                bool allow_mmap = true);

// --- Inspection + fuzzing ---

// Header summary of the record at the head of `bytes` (validates through
// the checksum). Used by `powerlens_cli import`.
struct RecordInfo {
  RecordType type = RecordType::kGraph;
  std::size_t payload_bytes = 0;
  std::size_t total_bytes = 0;
};
RecordInfo inspect_record(std::span<const std::byte> bytes);

// Fuzz entry point shared by tools/plfuzz and the libFuzzer target: tries
// to decode `bytes` as a graph, a plan, and a cost table. io::Error is the
// expected outcome for malformed input and is swallowed; any other
// exception escapes (the fuzz driver's failure signal). Returns how many of
// the three decoders accepted the input (0 for garbage, 1 for a valid
// record).
int fuzz_try_decode(std::span<const std::byte> bytes);

}  // namespace powerlens::io
