// Read-only memory mapping with a portable heap fallback.
//
// The cost-table loader wants zero-copy access to page-aligned prefix-sum
// arrays; everything else is happy reading the whole file. MappedFile
// abstracts both: map() mmaps when the platform supports it and otherwise
// (or on request) falls back to reading the file into an owned buffer, so
// callers hold one object whose bytes() stay valid for its lifetime either
// way. Moving a MappedFile never moves the underlying bytes — a mapping
// keeps its address and a heap buffer transfers its allocation — so spans
// into bytes() survive moves.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace powerlens::io {

class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  // Maps (or reads) `path`. `allow_mmap = false` forces the heap path —
  // the loader's escape hatch and the fallback test's lever. Throws
  // std::runtime_error when the file cannot be opened or read.
  static MappedFile map(const std::string& path, bool allow_mmap = true);

  std::span<const std::byte> bytes() const noexcept {
    return {data_, size_};
  }
  // True when bytes() points into an OS mapping rather than a heap buffer.
  bool mapped() const noexcept { return mapped_; }

 private:
  void reset() noexcept;

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::byte> heap_;  // owns the bytes on the fallback path
};

}  // namespace powerlens::io
