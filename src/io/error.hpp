// Typed failure taxonomy for the binary interchange readers.
//
// Every malformed input — wrong file type, future format version, bit rot,
// short read, or a payload that passes its checksum but decodes to an
// impossible object — surfaces as exactly one of these exception types,
// never as UB, a crash, or a silent partial object. The corruption fuzz
// suites (tests/io, tools/plfuzz) treat io::Error as the *expected* outcome
// for mutated bytes; anything else escaping a decoder is a bug.
#pragma once

#include <stdexcept>
#include <string>

namespace powerlens::io {

enum class ErrorKind {
  kBadMagic,         // leading bytes are not "PLBN"
  kVersionMismatch,  // format version this reader does not speak
  kWrongRecordType,  // a valid record, but not the type the caller asked for
  kTruncated,        // header or payload extends past the available bytes
  kChecksumMismatch, // payload bytes do not hash to the header checksum
  kMalformed,        // checksum-valid payload decoding to an invalid object
};

constexpr const char* error_kind_name(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::kBadMagic: return "bad_magic";
    case ErrorKind::kVersionMismatch: return "version_mismatch";
    case ErrorKind::kWrongRecordType: return "wrong_record_type";
    case ErrorKind::kTruncated: return "truncated";
    case ErrorKind::kChecksumMismatch: return "checksum_mismatch";
    case ErrorKind::kMalformed: return "malformed";
  }
  return "unknown";
}

class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, const std::string& what)
      : std::runtime_error(std::string(error_kind_name(kind)) + ": " + what),
        kind_(kind) {}
  ErrorKind kind() const noexcept { return kind_; }

 private:
  ErrorKind kind_;
};

struct BadMagicError final : Error {
  explicit BadMagicError(const std::string& w)
      : Error(ErrorKind::kBadMagic, w) {}
};
struct VersionMismatchError final : Error {
  explicit VersionMismatchError(const std::string& w)
      : Error(ErrorKind::kVersionMismatch, w) {}
};
struct WrongRecordTypeError final : Error {
  explicit WrongRecordTypeError(const std::string& w)
      : Error(ErrorKind::kWrongRecordType, w) {}
};
struct TruncatedError final : Error {
  explicit TruncatedError(const std::string& w)
      : Error(ErrorKind::kTruncated, w) {}
};
struct ChecksumMismatchError final : Error {
  explicit ChecksumMismatchError(const std::string& w)
      : Error(ErrorKind::kChecksumMismatch, w) {}
};
struct MalformedError final : Error {
  explicit MalformedError(const std::string& w)
      : Error(ErrorKind::kMalformed, w) {}
};

}  // namespace powerlens::io
