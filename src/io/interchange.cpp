#include "io/interchange.hpp"

#include <bit>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

namespace powerlens::io {

namespace {

// Smallest possible encoded layer: type byte, empty name, 17 i64 fields
// (shapes, costs, conv, attn). Used as the per-element floor when guarding
// the layer-count field against forged huge values.
constexpr std::size_t kMinLayerBytes = 1 + 4 + 17 * 8;

std::size_t checked_mul(std::size_t a, std::size_t b, std::size_t c) {
  if (a != 0 && b > std::numeric_limits<std::size_t>::max() / a) {
    throw MalformedError("cost table dimensions overflow");
  }
  const std::size_t ab = a * b;
  if (ab != 0 && c > std::numeric_limits<std::size_t>::max() / ab) {
    throw MalformedError("cost table dimensions overflow");
  }
  return ab * c;
}

// Re-types standard-library validation failures (Graph/PowerView
// constructors, Graph::validate) raised while assembling objects from a
// checksum-valid payload.
template <typename Fn>
auto as_malformed(const char* what, Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const Error&) {
    throw;  // already typed
  } catch (const std::logic_error& e) {
    throw MalformedError(std::string(what) + ": " + e.what());
  }
}

// Rejects bytes after the first record — the single-record decoders' strict
// framing (multi-record streams use parse_record directly).
void expect_single_record(const RecordView& view,
                          std::span<const std::byte> record) {
  if (view.total_size != record.size()) {
    throw MalformedError("trailing bytes after the record");
  }
}

// --- Graph payload ---

void encode_shape(Writer& w, const dnn::TensorShape& s) {
  w.i64(s.n);
  w.i64(s.c);
  w.i64(s.h);
  w.i64(s.w);
}

dnn::TensorShape decode_shape(Cursor& c) {
  dnn::TensorShape s;
  s.n = c.i64();
  s.c = c.i64();
  s.h = c.i64();
  s.w = c.i64();
  return s;
}

std::vector<std::byte> encode_graph_payload(const dnn::Graph& graph) {
  Writer w;
  w.str(graph.name());
  w.u64(graph.size());
  for (const dnn::Layer& l : graph.layers()) {
    w.u8(static_cast<std::uint8_t>(l.type));
    w.str(l.name);
    encode_shape(w, l.input);
    encode_shape(w, l.output);
    w.i64(l.flops);
    w.i64(l.params);
    w.i64(l.mem_bytes);
    w.i64(l.conv.kernel_h);
    w.i64(l.conv.kernel_w);
    w.i64(l.conv.stride);
    w.i64(l.conv.padding);
    w.i64(l.conv.groups);
    w.i64(l.conv.filters);
    w.i64(l.attn.heads);
    w.i64(l.attn.embed_dim);
    w.i64(l.attn.head_dim);
    w.i64(l.attn.seq_len);
  }
  for (dnn::NodeId id = 0; id < graph.size(); ++id) {
    const auto producers = graph.producers(id);
    w.u64(producers.size());
    for (dnn::NodeId p : producers) w.u64(p);
  }
  return w.take();
}

dnn::Graph decode_graph_payload(std::span<const std::byte> payload) {
  Cursor c(payload);
  std::string name = c.str();
  const std::uint64_t n = c.count(kMinLayerBytes);
  std::vector<dnn::Layer> layers;
  layers.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    dnn::Layer l;
    const std::uint8_t raw_type = c.u8();
    if (raw_type >= static_cast<std::uint8_t>(dnn::OpType::kCount_)) {
      throw MalformedError("graph layer " + std::to_string(i) +
                           " has unknown op type " + std::to_string(raw_type));
    }
    l.type = static_cast<dnn::OpType>(raw_type);
    l.name = c.str();
    l.input = decode_shape(c);
    l.output = decode_shape(c);
    l.flops = c.i64();
    l.params = c.i64();
    l.mem_bytes = c.i64();
    l.conv.kernel_h = c.i64();
    l.conv.kernel_w = c.i64();
    l.conv.stride = c.i64();
    l.conv.padding = c.i64();
    l.conv.groups = c.i64();
    l.conv.filters = c.i64();
    l.attn.heads = c.i64();
    l.attn.embed_dim = c.i64();
    l.attn.head_dim = c.i64();
    l.attn.seq_len = c.i64();
    layers.push_back(std::move(l));
  }
  std::vector<std::vector<dnn::NodeId>> producers(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t edges = c.count(8);
    producers[i].reserve(edges);
    for (std::uint64_t e = 0; e < edges; ++e) {
      producers[i].push_back(static_cast<dnn::NodeId>(c.u64()));
    }
  }
  c.expect_done("graph payload");
  return as_malformed("graph", [&] {
    dnn::Graph g(std::move(name), std::move(layers), std::move(producers));
    g.validate();
    return g;
  });
}

// --- Plan payload ---

std::vector<std::byte> encode_plan_payload(const core::OptimizationPlan& plan,
                                           std::uint64_t graph_signature) {
  Writer w;
  w.u64(graph_signature);
  w.f64(plan.hyper.eps);
  w.u64(plan.hyper.min_pts);
  w.u64(plan.view.num_layers());
  w.u64(plan.view.block_count());
  for (const clustering::PowerBlock& b : plan.view.blocks()) {
    w.u64(b.begin);
    w.u64(b.end);
  }
  w.u64(plan.block_levels.size());
  for (std::size_t level : plan.block_levels) w.u64(level);
  for (const auto* points : {&plan.schedule.points, &plan.schedule.cpu_points}) {
    w.u64(points->size());
    for (const hw::PresetPoint& p : *points) {
      w.u64(p.layer_index);
      w.u64(p.gpu_level);
    }
  }
  w.f64(plan.predicted_pass_time_s);
  w.f64(plan.predicted_pass_energy_j);
  return w.take();
}

std::vector<hw::PresetPoint> decode_preset_points(Cursor& c,
                                                  const char* what) {
  const std::uint64_t n = c.count(16);
  std::vector<hw::PresetPoint> points;
  points.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    hw::PresetPoint p;
    p.layer_index = static_cast<std::size_t>(c.u64());
    p.gpu_level = static_cast<std::size_t>(c.u64());
    if (!points.empty() && p.layer_index <= points.back().layer_index) {
      throw MalformedError(std::string(what) +
                           " preset points are not strictly increasing");
    }
    points.push_back(p);
  }
  return points;
}

PlanRecord decode_plan_payload(std::span<const std::byte> payload) {
  Cursor c(payload);
  PlanRecord out;
  out.graph_signature = c.u64();
  out.plan.hyper.eps = c.f64();
  out.plan.hyper.min_pts = static_cast<std::size_t>(c.u64());
  const std::uint64_t num_layers = c.u64();
  const std::uint64_t num_blocks = c.count(16);
  std::vector<clustering::PowerBlock> blocks;
  blocks.reserve(num_blocks);
  for (std::uint64_t i = 0; i < num_blocks; ++i) {
    clustering::PowerBlock b;
    b.begin = static_cast<std::size_t>(c.u64());
    b.end = static_cast<std::size_t>(c.u64());
    blocks.push_back(b);
  }
  if (num_blocks == 0 && num_layers == 0) {
    out.plan.view = clustering::PowerView();  // untrained / hand-built plans
  } else {
    out.plan.view = as_malformed("plan view", [&] {
      return clustering::PowerView(std::move(blocks),
                                   static_cast<std::size_t>(num_layers));
    });
  }
  const std::uint64_t num_levels = c.count(8);
  if (num_levels != out.plan.view.block_count()) {
    throw MalformedError("plan has " + std::to_string(num_levels) +
                         " block levels for " +
                         std::to_string(out.plan.view.block_count()) +
                         " blocks");
  }
  out.plan.block_levels.reserve(num_levels);
  for (std::uint64_t i = 0; i < num_levels; ++i) {
    out.plan.block_levels.push_back(static_cast<std::size_t>(c.u64()));
  }
  out.plan.schedule.points = decode_preset_points(c, "gpu");
  out.plan.schedule.cpu_points = decode_preset_points(c, "cpu");
  out.plan.predicted_pass_time_s = c.f64();
  out.plan.predicted_pass_energy_j = c.f64();
  c.expect_done("plan payload");
  return out;
}

// --- Cost-table payload ---

struct CostTableMeta {
  std::size_t num_layers = 0;
  std::size_t gpu_levels = 0;
  std::vector<std::size_t> cpu_slot;
  std::size_t cpu_slots = 0;
  std::size_t array_len = 0;
};

CostTableMeta decode_cost_table_meta(Cursor& c) {
  CostTableMeta m;
  m.num_layers = static_cast<std::size_t>(c.u64());
  m.gpu_levels = static_cast<std::size_t>(c.u64());
  const std::uint64_t ladder = c.count(8);
  m.cpu_slot.reserve(ladder);
  for (std::uint64_t i = 0; i < ladder; ++i) {
    m.cpu_slot.push_back(static_cast<std::size_t>(c.u64()));
  }
  m.cpu_slots = static_cast<std::size_t>(c.u64());
  m.array_len = static_cast<std::size_t>(c.u64());
  if (m.array_len !=
      checked_mul(m.gpu_levels, m.cpu_slots, m.num_layers + 1)) {
    throw MalformedError("cost table array length disagrees with dimensions");
  }
  return m;
}

}  // namespace

// --- Graph records ---

std::vector<std::byte> encode_graph(const dnn::Graph& graph) {
  return frame_record(RecordType::kGraph, encode_graph_payload(graph));
}

dnn::Graph decode_graph(std::span<const std::byte> record) {
  const RecordView view = parse_record(record, RecordType::kGraph);
  expect_single_record(view, record);
  return decode_graph_payload(view.payload);
}

void save_graph(const std::string& path, const dnn::Graph& graph) {
  write_file(path, encode_graph(graph));
}

dnn::Graph load_graph(const std::string& path) {
  return decode_graph(read_file(path));
}

// --- Plan records ---

std::vector<std::byte> encode_plan(const core::OptimizationPlan& plan,
                                   std::uint64_t graph_signature) {
  return frame_record(RecordType::kPlan,
                      encode_plan_payload(plan, graph_signature));
}

PlanRecord decode_plan(std::span<const std::byte> record) {
  const RecordView view = parse_record(record, RecordType::kPlan);
  expect_single_record(view, record);
  return decode_plan_payload(view.payload);
}

void save_plan(const std::string& path, const core::OptimizationPlan& plan,
               std::uint64_t graph_signature) {
  write_file(path, encode_plan(plan, graph_signature));
}

PlanRecord load_plan(const std::string& path) {
  return decode_plan(read_file(path));
}

void save_plan_snapshot(const std::string& path,
                        std::span<const PlanRecord> records) {
  std::vector<std::byte> bytes;
  for (const PlanRecord& r : records) {
    const std::vector<std::byte> record =
        encode_plan(r.plan, r.graph_signature);
    bytes.insert(bytes.end(), record.begin(), record.end());
  }
  write_file(path, bytes);
}

std::vector<PlanRecord> load_plan_snapshot(const std::string& path) {
  const std::vector<std::byte> bytes = read_file(path);
  std::vector<PlanRecord> records;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    const std::span<const std::byte> rest =
        std::span<const std::byte>(bytes).subspan(pos);
    const RecordView view = parse_record(rest, RecordType::kPlan);
    records.push_back(decode_plan_payload(view.payload));
    pos += view.total_size;
  }
  return records;
}

// --- Cost-table records ---

std::vector<std::byte> encode_cost_table(const hw::CostTable& table) {
  const hw::CostTable::Raw raw = table.raw();
  Writer w;
  w.u64(raw.num_layers);
  w.u64(raw.gpu_levels);
  w.u64(raw.cpu_slot.size());
  for (std::size_t s : raw.cpu_slot) w.u64(s);
  w.u64(raw.cpu_slots);
  w.u64(raw.time_prefix.size());
  // Align the arrays to a page boundary of the final file (the record
  // starts at file offset 0, so the payload begins at kHeaderSize).
  w.pad_to(kPageAlign, kHeaderSize);
  for (double v : raw.time_prefix) w.f64(v);
  for (double v : raw.energy_prefix) w.f64(v);
  return frame_record(RecordType::kCostTable, w.take());
}

hw::CostTable decode_cost_table(std::span<const std::byte> record) {
  const RecordView view = parse_record(record, RecordType::kCostTable);
  expect_single_record(view, record);
  Cursor c(view.payload);
  CostTableMeta meta = decode_cost_table_meta(c);
  c.skip_to(kPageAlign, kHeaderSize);
  if (meta.array_len > c.remaining() / 16) {
    throw TruncatedError("cost table arrays extend past the payload");
  }
  std::vector<double> time(meta.array_len);
  std::vector<double> energy(meta.array_len);
  for (double& v : time) v = c.f64();
  for (double& v : energy) v = c.f64();
  c.expect_done("cost table payload");
  return as_malformed("cost table", [&] {
    return hw::CostTable::from_parts(meta.num_layers, meta.gpu_levels,
                                     std::move(meta.cpu_slot), meta.cpu_slots,
                                     std::move(time), std::move(energy));
  });
}

void save_cost_table(const std::string& path, const hw::CostTable& table) {
  write_file(path, encode_cost_table(table));
}

LoadedCostTable load_cost_table(const std::string& path, bool allow_mmap) {
  LoadedCostTable out;
  out.mapping = MappedFile::map(path, allow_mmap);
  const std::span<const std::byte> bytes = out.mapping.bytes();
  const RecordView view = parse_record(bytes, RecordType::kCostTable);
  if (view.total_size != bytes.size()) {
    throw MalformedError("trailing bytes after the record");
  }
  Cursor c(view.payload);
  CostTableMeta meta = decode_cost_table_meta(c);
  c.skip_to(kPageAlign, kHeaderSize);
  if (meta.array_len > c.remaining() / 16) {
    throw TruncatedError("cost table arrays extend past the payload");
  }
  const std::size_t arrays_offset = kHeaderSize + c.offset();
  const bool aligned =
      reinterpret_cast<std::uintptr_t>(bytes.data() + arrays_offset) %
          alignof(double) ==
      0;
  if (out.mapping.mapped() && aligned &&
      std::endian::native == std::endian::little) {
    // Zero-copy: the table's spans read straight out of the mapping. The
    // on-disk doubles are little-endian IEEE-754 bit patterns, which on a
    // little-endian host are exactly the in-memory representation.
    const double* time =
        reinterpret_cast<const double*>(bytes.data() + arrays_offset);
    const double* energy = time + meta.array_len;
    out.table = as_malformed("cost table", [&] {
      return hw::CostTable::from_view(
          meta.num_layers, meta.gpu_levels, std::move(meta.cpu_slot),
          meta.cpu_slots, std::span<const double>(time, meta.array_len),
          std::span<const double>(energy, meta.array_len));
    });
    out.mmapped = true;
    return out;
  }
  std::vector<double> time(meta.array_len);
  std::vector<double> energy(meta.array_len);
  for (double& v : time) v = c.f64();
  for (double& v : energy) v = c.f64();
  out.table = as_malformed("cost table", [&] {
    return hw::CostTable::from_parts(meta.num_layers, meta.gpu_levels,
                                     std::move(meta.cpu_slot), meta.cpu_slots,
                                     std::move(time), std::move(energy));
  });
  out.mmapped = false;
  return out;
}

// --- Inspection + fuzzing ---

RecordInfo inspect_record(std::span<const std::byte> bytes) {
  const RecordView view = parse_record(bytes);
  RecordInfo info;
  info.type = view.type;
  info.payload_bytes = view.payload.size();
  info.total_bytes = view.total_size;
  return info;
}

int fuzz_try_decode(std::span<const std::byte> bytes) {
  int accepted = 0;
  try {
    (void)decode_graph(bytes);
    ++accepted;
  } catch (const Error&) {
  }
  try {
    (void)decode_plan(bytes);
    ++accepted;
  } catch (const Error&) {
  }
  try {
    (void)decode_cost_table(bytes);
    ++accepted;
  } catch (const Error&) {
  }
  return accepted;
}

}  // namespace powerlens::io
