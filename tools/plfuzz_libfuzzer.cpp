// libFuzzer entry point for the binary interchange decoders — the
// open-ended, coverage-guided companion to the deterministic plfuzz driver.
// Build with -DPOWERLENS_LIBFUZZER=ON (requires clang; the target links
// with -fsanitize=fuzzer) and seed it from the committed goldens:
//
//   ./plfuzz_libfuzzer tests/data/interchange_golden/
//
// The contract matches plfuzz: io::Error is the expected outcome for
// malformed input and is swallowed by fuzz_try_decode; anything else
// (crash, sanitizer report, foreign exception) is a finding.
#include "io/interchange.hpp"

#include <cstddef>
#include <cstdint>
#include <span>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  powerlens::io::fuzz_try_decode(
      std::span<const std::byte>(reinterpret_cast<const std::byte*>(data),
                                 size));
  return 0;
}
