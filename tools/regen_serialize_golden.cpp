// Regenerates tests/data/serialize_golden.txt in place after a DELIBERATE
// numerics change in the kernel layer.
//
// The golden file pins two independent things: the serialization FORMAT
// (scaler + model + probe-input bytes) and the forward-pass NUMERICS
// (golden_scaled / golden_logits). This tool re-baselines only the second:
// it loads the existing golden models and probe inputs, recomputes the two
// output blocks with the current kernels, and rewrites the file. The
// scaler, model, and probe-input bytes are reproduced through the format's
// load->save fixed point (max_digits10 round-trip), so a format drift still
// shows up as a diff in the leading sections — this tool cannot paper one
// over silently.
//
// With a second argument it also regenerates the binary interchange goldens
// (tests/data/interchange_golden/*.plbin) from the shared fixture builders
// after a DELIBERATE format-version bump — the fixtures are integer/literal
// built, so the bytes only change when the wire format does.
//
// Usage: regen_serialize_golden <path/to/serialize_golden.txt>
//                               [path/to/interchange_golden_dir]
#include "io/interchange.hpp"
#include "linalg/kernels.hpp"
#include "linalg/stats.hpp"
#include "nn/mlp.hpp"
#include "nn/serialize.hpp"
#include "support/interchange_fixtures.hpp"

#include <cstdio>
#include <exception>
#include <fstream>
#include <string>

namespace {

int regen_interchange(const std::string& dir) {
  using namespace powerlens;
  io::save_graph(dir + "/graph.plbin", testing::golden_graph());
  io::save_plan(dir + "/plan.plbin", testing::golden_plan(),
                testing::golden_plan_signature());
  io::save_cost_table(dir + "/cost_table.plbin",
                      testing::golden_cost_table());
  std::printf("re-baselined %s/{graph,plan,cost_table}.plbin (format v%u)\n",
              dir.c_str(), static_cast<unsigned>(io::kFormatVersion));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace powerlens;
  if (argc != 2 && argc != 3) {
    std::fprintf(stderr,
                 "usage: %s <serialize_golden.txt> [interchange_golden_dir]\n",
                 argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  try {
    std::ifstream is(path);
    if (!is) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    const linalg::StandardScaler scaler = linalg::StandardScaler::load(is);
    const nn::TwoStageMlp model = nn::TwoStageMlp::load(is);
    const linalg::Matrix xs = nn::read_matrix(is, "golden_xs");
    const linalg::Matrix xt = nn::read_matrix(is, "golden_xt");
    is.close();

    std::ofstream os(path);
    if (!os) {
      std::fprintf(stderr, "cannot rewrite %s\n", path.c_str());
      return 1;
    }
    scaler.save(os);
    model.save(os);
    nn::write_matrix(os, "golden_xs", xs);
    nn::write_matrix(os, "golden_xt", xt);
    nn::write_matrix(os, "golden_scaled", scaler.transform(xs));
    nn::write_matrix(os, "golden_logits", model.forward_const(xs, xt));
    std::printf("re-baselined %s on the %s kernel path\n", path.c_str(),
                linalg::kernels::path_name(linalg::kernels::active_path()));
    if (argc == 3) return regen_interchange(argv[2]);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "regen failed: %s\n", e.what());
    return 1;
  }
}
