// plfuzz: deterministic byte-mutation fuzzer for the binary interchange.
//
// Builds an in-process corpus of valid records (a model graph, a random
// generator graph, a plan, a cost table) plus any corpus files passed on
// the command line, then runs seeded SplitMix64-driven mutation rounds:
// each round copies a corpus entry, applies a handful of mutations (bit
// flips, byte stomps, truncation, extension, chunk swaps), and feeds the
// result to io::fuzz_try_decode. A typed io::Error is the expected outcome
// and is swallowed inside fuzz_try_decode; ANY other escape — std::bad_alloc
// from an unchecked size field, std::logic_error from a constructor the
// decoder forgot to wrap, a crash under ASan — fails the run with the round
// and seed needed to replay it.
//
// Registered as a ctest with label `fuzz` (tools/CMakeLists.txt); the
// default budget keeps it deterministic and well under 30 s. For open-ended
// exploration build with -DPOWERLENS_LIBFUZZER=ON and run plfuzz_libfuzzer.
//
// Usage: plfuzz [rounds] [seed] [corpus files...]
#include "io/binary.hpp"
#include "io/interchange.hpp"
#include "support/interchange_fixtures.hpp"

#include "dnn/random_gen.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

namespace {

// SplitMix64 (Steele et al.): tiny, seedable, and good enough to cover the
// mutation space; successive seeds give uncorrelated streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  // Uniform in [0, bound); bound must be positive.
  std::size_t below(std::size_t bound) {
    return static_cast<std::size_t>(next() % bound);
  }

 private:
  std::uint64_t state_;
};

void mutate(std::vector<std::byte>& bytes, SplitMix64& rng) {
  // An empty buffer can only grow.
  const std::size_t op = bytes.empty() ? 3 : rng.below(5);
  switch (op) {
    case 0: {  // flip one bit
      const std::size_t i = rng.below(bytes.size());
      bytes[i] ^= static_cast<std::byte>(1u << rng.below(8));
      break;
    }
    case 1: {  // stomp one byte
      bytes[rng.below(bytes.size())] =
          static_cast<std::byte>(rng.next() & 0xff);
      break;
    }
    case 2:  // truncate to a random prefix (possibly empty)
      bytes.resize(rng.below(bytes.size() + 1));
      break;
    case 3: {  // extend with up to 64 random bytes
      const std::size_t n = 1 + rng.below(64);
      for (std::size_t i = 0; i < n; ++i) {
        bytes.push_back(static_cast<std::byte>(rng.next() & 0xff));
      }
      break;
    }
    default: {  // swap two equal-length chunks
      const std::size_t len = 1 + rng.below(16);
      if (bytes.size() < 2 * len) break;
      const std::size_t a = rng.below(bytes.size() - len + 1);
      const std::size_t b = rng.below(bytes.size() - len + 1);
      for (std::size_t i = 0; i < len; ++i) {
        std::swap(bytes[a + i], bytes[b + i]);
      }
      break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace powerlens;
  std::uint64_t rounds = 60000;
  std::uint64_t seed = 1;
  if (argc > 1) rounds = static_cast<std::uint64_t>(std::atoll(argv[1]));
  if (argc > 2) seed = static_cast<std::uint64_t>(std::atoll(argv[2]));

  std::vector<std::vector<std::byte>> corpus;
  try {
    corpus.push_back(io::encode_graph(testing::golden_graph()));
    dnn::RandomDnnGenerator gen(7);
    corpus.push_back(io::encode_graph(gen.generate()));
    corpus.push_back(io::encode_plan(testing::golden_plan(),
                                     testing::golden_plan_signature()));
    corpus.push_back(io::encode_cost_table(testing::golden_cost_table()));
    corpus.push_back({});  // grow-from-nothing seed
    for (int i = 3; i < argc; ++i) {
      corpus.push_back(io::read_file(argv[i]));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "plfuzz: corpus construction failed: %s\n",
                 e.what());
    return 1;
  }

  // Sanity: every valid corpus record must decode as exactly one type
  // (the empty grow-from-nothing seed is exempt).
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    if (corpus[i].empty()) continue;
    if (io::fuzz_try_decode(corpus[i]) != 1) {
      std::fprintf(stderr,
                   "plfuzz: corpus entry %zu does not decode cleanly\n", i);
      return 1;
    }
  }

  SplitMix64 rng(seed);
  std::uint64_t round = 0;
  try {
    for (; round < rounds; ++round) {
      std::vector<std::byte> bytes = corpus[rng.below(corpus.size())];
      const std::size_t num_mutations = 1 + rng.below(8);
      for (std::size_t m = 0; m < num_mutations; ++m) mutate(bytes, rng);
      io::fuzz_try_decode(bytes);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "plfuzz: ESCAPE at round %llu (seed %llu): %s\n"
                 "replay: plfuzz %llu %llu\n",
                 static_cast<unsigned long long>(round),
                 static_cast<unsigned long long>(seed),
                 e.what(),
                 static_cast<unsigned long long>(round + 1),
                 static_cast<unsigned long long>(seed));
    return 1;
  }
  std::printf("plfuzz: %llu rounds over %zu corpus entries, seed %llu: ok\n",
              static_cast<unsigned long long>(rounds), corpus.size(),
              static_cast<unsigned long long>(seed));
  return 0;
}
