// Quickstart: train PowerLens for a platform, optimize one network, and
// compare against the built-in ondemand governor.
//
//   $ quickstart [tx2|agx] [model_name] [batch]
//
// Walks the whole pipeline of the paper's Figure 2: offline dataset
// generation + model training, then per-network optimization (feature
// extraction -> hyperparameter prediction -> power behavior similarity
// clustering -> per-block frequency decisions), and finally simulated
// deployment with preset DVFS instrumentation points.
#include "baselines/ondemand.hpp"
#include "core/metrics.hpp"
#include "core/powerlens.hpp"
#include "dnn/models.hpp"
#include "hw/sim_engine.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace powerlens;

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "agx";
  const std::string model = argc > 2 ? argv[2] : "resnet152";
  const std::int64_t batch = argc > 3 ? std::atoll(argv[3]) : 8;

  const hw::Platform platform =
      which == "tx2" ? hw::make_tx2() : hw::make_agx();
  std::printf("Platform: %s (%zu GPU levels, %.0f-%.0f MHz)\n",
              platform.name.c_str(), platform.gpu_levels(),
              platform.gpu.freqs_hz.front() / 1e6,
              platform.gpu.freqs_hz.back() / 1e6);

  // 1. Offline phase: automated dataset generation and model training.
  core::PowerLensConfig config;
  config.dataset.num_networks = 300;
  core::PowerLens framework(platform, config);
  std::printf("Training prediction models ...\n");
  const core::TrainingSummary summary = framework.train();
  std::printf("  hyperparameter model accuracy: %.1f%%\n",
              100.0 * summary.hyper_model.test_accuracy);
  std::printf("  decision model accuracy:       %.1f%% (mean level error "
              "%.2f)\n",
              100.0 * summary.decision_model.test_accuracy,
              summary.decision_model.test_mean_level_error);

  // 2. Optimize the target network.
  const dnn::Graph graph = dnn::make_model(model, batch);
  const core::OptimizationPlan plan = framework.optimize(graph);
  std::printf("\n%s: %zu layers -> power view %s\n", graph.name().c_str(),
              graph.size(), plan.view.to_string().c_str());
  for (std::size_t b = 0; b < plan.view.block_count(); ++b) {
    std::printf("  block %zu: layers [%zu, %zu) -> %.0f MHz (level %zu)\n", b,
                plan.view.blocks()[b].begin, plan.view.blocks()[b].end,
                platform.gpu_freq(plan.block_levels[b]) / 1e6,
                plan.block_levels[b]);
  }

  // 3. Deploy: preset instrumentation vs the ondemand baseline.
  hw::SimEngine engine(platform);
  baselines::OndemandGovernor bim;
  hw::RunPolicy bim_policy = engine.default_policy();
  bim_policy.governor = &bim;
  const hw::ExecutionResult r_bim = engine.run(graph, 50, bim_policy);

  baselines::OndemandGovernor cpu_governor;
  hw::RunPolicy pl_policy = engine.default_policy();
  pl_policy.schedule = &plan.schedule;
  pl_policy.governor = &cpu_governor;
  const hw::ExecutionResult r_pl = engine.run(graph, 50, pl_policy);

  std::printf("\n50 passes x batch %lld:\n", static_cast<long long>(batch));
  std::printf("  ondemand : %.2f s, %.1f J, EE %.3f img/J\n", r_bim.time_s,
              r_bim.energy_j, r_bim.energy_efficiency());
  std::printf("  PowerLens: %.2f s, %.1f J, EE %.3f img/J\n", r_pl.time_s,
              r_pl.energy_j, r_pl.energy_efficiency());
  std::printf("  energy efficiency gain: %.1f%%\n",
              100.0 * core::ee_gain(r_pl, r_bim));
  return 0;
}
