// Example: an edge inference server processing a mixed task queue.
//
// The paper's Figure 5 scenario as an application: a stream of inference
// requests over several models, each carrying a batch of images. The server
// precomputes one optimization plan per deployed model (offline), then
// applies the matching preset schedule per request — contrast with a single
// reactive governor chasing the mixed workload.
#include "baselines/fpg.hpp"
#include "baselines/ondemand.hpp"
#include "core/metrics.hpp"
#include "core/powerlens.hpp"
#include "dnn/models.hpp"
#include "hw/sim_engine.hpp"

#include <cstdio>
#include <map>
#include <random>
#include <string>
#include <vector>

using namespace powerlens;

namespace {

struct Request {
  std::string model;
  int passes;
};

}  // namespace

int main() {
  const hw::Platform platform = hw::make_tx2();
  hw::SimEngine engine(platform);

  // The server deploys three models.
  const std::vector<std::string> deployed = {"resnet34", "googlenet",
                                             "vit_base_32"};
  std::map<std::string, dnn::Graph> graphs;
  for (const std::string& name : deployed) {
    graphs.emplace(name, dnn::make_model(name, /*batch=*/8));
  }

  // Offline: train once, build one plan per model.
  core::PowerLensConfig config;
  config.dataset.num_networks = 300;
  core::PowerLens framework(platform, config);
  framework.train();
  std::map<std::string, core::OptimizationPlan> plans;
  for (const auto& [name, graph] : graphs) {
    plans.emplace(name, framework.optimize(graph));
    std::printf("deployed %-12s -> %zu power block(s)\n", name.c_str(),
                plans.at(name).view.block_count());
  }

  // A random request stream.
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<std::size_t> pick(0, deployed.size() - 1);
  std::uniform_int_distribution<int> batches(2, 6);
  std::vector<Request> queue;
  for (int i = 0; i < 60; ++i) {
    queue.push_back({deployed[pick(rng)], batches(rng)});
  }

  // Serve under PowerLens (per-request preset schedule).
  hw::ExecutionResult pl_total;
  baselines::OndemandGovernor cpu_governor;
  for (const Request& req : queue) {
    hw::RunPolicy policy = engine.default_policy();
    policy.schedule = &plans.at(req.model).schedule;
    policy.governor = &cpu_governor;
    const hw::ExecutionResult r =
        engine.run(graphs.at(req.model), req.passes, policy);
    pl_total.time_s += r.time_s;
    pl_total.energy_j += r.energy_j;
    pl_total.images += r.images;
  }

  // Serve the identical stream under the reactive baselines.
  auto serve_reactive = [&](hw::Governor& governor) {
    std::vector<hw::WorkItem> items;
    items.reserve(queue.size());
    for (const Request& req : queue) {
      items.push_back({&graphs.at(req.model), req.passes});
    }
    hw::RunPolicy policy = engine.default_policy();
    policy.governor = &governor;
    return engine.run_workload(items, policy);
  };
  baselines::OndemandGovernor bim;
  const hw::ExecutionResult r_bim = serve_reactive(bim);
  baselines::FpgGovernor fpg(baselines::FpgMode::kGpuOnly);
  const hw::ExecutionResult r_fpg = serve_reactive(fpg);

  std::printf("\n60 requests, %lld images total:\n",
              static_cast<long long>(pl_total.images));
  std::printf("  %-10s %10s %10s %14s\n", "method", "time_s", "energy_J",
              "EE_img_per_J");
  std::printf("  %-10s %10.2f %10.1f %14.3f\n", "ondemand", r_bim.time_s,
              r_bim.energy_j, r_bim.energy_efficiency());
  std::printf("  %-10s %10.2f %10.1f %14.3f\n", "FPG-G", r_fpg.time_s,
              r_fpg.energy_j, r_fpg.energy_efficiency());
  std::printf("  %-10s %10.2f %10.1f %14.3f\n", "PowerLens", pl_total.time_s,
              pl_total.energy_j, pl_total.energy_efficiency());
  std::printf("\nEE gain vs ondemand: %.1f%%, vs FPG-G: %.1f%%\n",
              100.0 * core::ee_gain(pl_total, r_bim),
              100.0 * core::ee_gain(pl_total, r_fpg));
  return 0;
}
