// Example: an edge inference server processing a mixed task queue.
//
// The paper's Figure 5 scenario as an application, driven through the
// serving subsystem (serve::Server): three deployed models, a seeded
// Poisson request stream with per-request deadlines, PowerLens preset plans
// memoized in the plan cache — contrast with a single reactive governor
// chasing the mixed workload. Also demonstrates admission control: a
// bounded in-system queue sheds load instead of letting latency grow
// without bound.
#include "core/powerlens.hpp"
#include "dnn/models.hpp"
#include "serve/server.hpp"

#include <cstdio>
#include <string>
#include <vector>

using namespace powerlens;

namespace {

void print_report(const serve::ServeReport& r) {
  std::printf("  %-10s %10.2f %10.1f %14.3f   p99 %6.3f s  %zu/%zu on time\n",
              r.policy.c_str(), r.busy_s, r.energy_j, r.energy_efficiency(),
              r.latency_p99_s, r.admitted - r.deadline_misses, r.admitted);
}

}  // namespace

int main() {
  const hw::Platform platform = hw::make_tx2();

  // The server deploys three models.
  std::vector<serve::DeployedModel> models;
  for (const char* name : {"resnet34", "googlenet", "vit_base_32"}) {
    models.push_back({name, dnn::make_model(name, /*batch=*/8)});
  }

  // Offline: train once. Plans are built lazily, one per deployed model, on
  // first request — and memoized in the server's plan cache thereafter.
  core::PowerLensConfig config;
  config.dataset.num_networks = 300;
  core::PowerLens framework(platform, config);
  framework.train();

  // A seeded Poisson request stream: 60 requests, ~1.5 arrivals/s, each
  // carrying 32 images in batches of 8, due 6 s after arrival.
  serve::RequestStreamConfig stream_config;
  stream_config.seed = 99;
  stream_config.num_tasks = 60;
  stream_config.arrivals = serve::ArrivalProcess::kPoisson;
  stream_config.arrival_rate_hz = 1.5;
  stream_config.images_per_task = 32;
  stream_config.batch = 8;
  stream_config.deadline_s = 6.0;
  const serve::RequestStream stream(models.size(), stream_config);

  const auto serve_under = [&](serve::ServePolicy policy) {
    serve::ServerConfig server_config;
    server_config.policy = policy;
    server_config.num_workers = 4;  // results are invariant to this
    serve::Server server(platform, models, server_config, &framework);
    return server.serve(stream);
  };

  const serve::ServeReport r_pl = serve_under(serve::ServePolicy::kPowerLens);
  const serve::ServeReport r_bim = serve_under(serve::ServePolicy::kBiM);
  const serve::ServeReport r_fpg = serve_under(serve::ServePolicy::kFpgG);

  std::printf("%zu requests, %lld images total (%llu plan-cache hits):\n",
              r_pl.total_tasks, static_cast<long long>(r_pl.images),
              static_cast<unsigned long long>(r_pl.plan_cache_hits));
  std::printf("  %-10s %10s %10s %14s\n", "method", "busy_s", "energy_J",
              "EE_img_per_J");
  print_report(r_bim);
  print_report(r_fpg);
  print_report(r_pl);

  // Overload response: cap the in-system queue at 4 requests and shed the
  // rest at arrival (plan policies only — a reactive governor's history
  // cannot be forked around a rejected request).
  serve::ServerConfig bounded;
  bounded.policy = serve::ServePolicy::kPowerLens;
  bounded.num_workers = 4;
  bounded.admission_capacity = 4;
  serve::Server server(platform, models, bounded, &framework);
  const serve::ServeReport r_cap = server.serve(stream);
  std::printf(
      "\nwith admission_capacity=4: admitted %zu, rejected %zu, "
      "p99 latency %.3f s (was %.3f s)\n",
      r_cap.admitted, r_cap.rejected, r_cap.latency_p99_s, r_pl.latency_p99_s);
  return 0;
}
