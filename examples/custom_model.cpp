// Example: optimizing a user-defined network.
//
// PowerLens is not tied to the torchvision zoo — any Graph built with
// GraphBuilder goes through the same pipeline. This example defines a small
// detection-style backbone+head with a deliberately mixed power profile
// (compute-heavy backbone, memory-heavy upsampling head) and shows how the
// power view separates the regimes and assigns each its own frequency.
#include "core/powerlens.hpp"
#include "dnn/builder.hpp"
#include "features/global.hpp"
#include "hw/analytic.hpp"
#include "hw/sim_engine.hpp"

#include <cstdio>

using namespace powerlens;

namespace {

dnn::Graph make_detector(std::int64_t batch) {
  dnn::GraphBuilder b("mini_detector", {batch, 3, 224, 224});
  dnn::NodeId x = b.input();

  // Backbone: conv stages, compute-dominant.
  x = b.conv2d(x, 32, 3, 2, 1);
  x = b.batch_norm(x);
  x = b.relu(x);
  std::int64_t width = 64;
  for (int stage = 0; stage < 3; ++stage) {
    for (int i = 0; i < 3; ++i) {
      const dnn::NodeId skip = x;
      dnn::NodeId y = b.conv2d(x, width, 3, i == 0 && stage > 0 ? 2 : 1, 1);
      y = b.batch_norm(y);
      y = b.relu(y);
      y = b.conv2d(y, width, 3, 1, 1);
      y = b.batch_norm(y);
      if (b.shape(y) == b.shape(skip)) {
        y = b.add(y, skip);
      }
      x = b.relu(y);
    }
    width *= 2;
  }

  // Head: elementwise/normalization-heavy post-processing, memory-dominant.
  for (int i = 0; i < 24; ++i) {
    x = b.gelu(x);
    x = b.layer_norm(x);
  }
  x = b.conv2d(x, 255, 1, 1, 0, 1, "det_head");
  return b.build();
}

}  // namespace

int main() {
  const hw::Platform platform = hw::make_agx();
  const dnn::Graph graph = make_detector(8);

  std::printf("custom model '%s': %zu layers, %.2f GFLOPs/img\n",
              graph.name().c_str(), graph.size(),
              static_cast<double>(graph.total_flops()) / (8 * 1e9));

  core::PowerLensConfig config;
  config.dataset.num_networks = 300;
  core::PowerLens framework(platform, config);
  framework.train();

  const core::OptimizationPlan plan = framework.optimize(graph);
  std::printf("power view: %s\n", plan.view.to_string().c_str());
  for (std::size_t i = 0; i < plan.view.block_count(); ++i) {
    const clustering::PowerBlock& blk = plan.view.blocks()[i];
    const features::GlobalFeatures f =
        features::GlobalFeatureExtractor::extract(graph, blk.begin, blk.end);
    std::printf(
        "  block %zu [%3zu,%3zu): compute-op share %.0f%%  -> %4.0f MHz\n", i,
        blk.begin, blk.end, 100.0 * f.statistics[8],
        platform.gpu_freq(plan.block_levels[i]) / 1e6);
  }

  // Verify against the analytic oracle.
  const core::OptimizationPlan oracle = framework.optimize_oracle(graph);
  std::printf("oracle view:  %s\n", oracle.view.to_string().c_str());

  hw::SimEngine engine(platform);
  hw::RunPolicy policy = engine.default_policy();
  policy.schedule = &plan.schedule;
  const hw::ExecutionResult r = engine.run(graph, 30, policy);
  std::printf("30 passes: %.2f s, %.1f J, EE %.3f img/J, %zu switches\n",
              r.time_s, r.energy_j, r.energy_efficiency(),
              r.dvfs_transitions);
  return 0;
}
