// Example: porting PowerLens to a new hardware platform.
//
// The paper's third adaptability claim (section 2.3.1): "transferring it to
// a new hardware platform simply involves the automated generation of
// datasets and training" — no manual recalibration of thresholds or
// utilization heuristics. This example defines a hypothetical next-gen
// embedded board (an Orin-like device with a wider ladder and more compute),
// reruns the identical offline pipeline, and shows the learned deployment
// immediately transferring to the zoo models.
#include "baselines/ondemand.hpp"
#include "core/metrics.hpp"
#include "core/powerlens.hpp"
#include "dnn/models.hpp"
#include "hw/sim_engine.hpp"

#include <cstdio>

using namespace powerlens;

namespace {

hw::Platform make_orin_like() {
  hw::Platform p = hw::make_agx();
  p.name = "orin_like";
  // 17 levels, 114-1836 MHz (wider, finer ladder than Xavier).
  p.gpu.freqs_hz.clear();
  for (int i = 0; i < 17; ++i) {
    p.gpu.freqs_hz.push_back(114.75e6 + i * 107.6e6);
  }
  p.gpu.cuda_cores = 1024;  // Ampere-class SM array
  p.gpu.c_eff = 1.9e-8;
  p.gpu.v_min = 0.47;
  p.gpu.v_max = 1.05;
  p.mem.bandwidth_bytes_per_s = 204.8e9;  // LPDDR5
  p.mem.traffic_amplification = 7.0;
  p.validate();
  return p;
}

}  // namespace

int main() {
  const hw::Platform platform = make_orin_like();
  std::printf("new platform '%s': %zu GPU levels, %.0f-%.0f MHz, %d cores\n",
              platform.name.c_str(), platform.gpu_levels(),
              platform.gpu.freqs_hz.front() / 1e6,
              platform.gpu.freqs_hz.back() / 1e6, platform.gpu.cuda_cores);

  // The exact same offline pipeline — nothing platform-specific to hand-tune.
  core::PowerLensConfig config;
  config.dataset.num_networks = 300;
  core::PowerLens framework(platform, config);
  const core::TrainingSummary summary = framework.train();
  std::printf("retrained: hyper %.1f%%, decision %.1f%% (level error %.2f)\n",
              100.0 * summary.hyper_model.test_accuracy,
              100.0 * summary.decision_model.test_accuracy,
              summary.decision_model.test_mean_level_error);

  hw::SimEngine engine(platform);
  std::printf("\n%-16s %-7s %-10s %-10s\n", "model", "blocks", "EE gain",
              "vs ondemand");
  double avg = 0.0;
  int count = 0;
  for (const dnn::ModelSpec& spec : dnn::model_zoo()) {
    const dnn::Graph g = spec.build(8);
    const core::OptimizationPlan plan = framework.optimize(g);

    baselines::OndemandGovernor bim;
    hw::RunPolicy bim_policy = engine.default_policy();
    bim_policy.governor = &bim;
    const hw::ExecutionResult r_bim = engine.run(g, 25, bim_policy);

    baselines::OndemandGovernor cpu_governor;
    hw::RunPolicy pl_policy = engine.default_policy();
    pl_policy.schedule = &plan.schedule;
    pl_policy.governor = &cpu_governor;
    const hw::ExecutionResult r_pl = engine.run(g, 25, pl_policy);

    const double gain = core::ee_gain(r_pl, r_bim);
    std::printf("%-16s %-7zu %6.1f%%\n", spec.name.data(),
                plan.view.block_count(), 100.0 * gain);
    avg += gain;
    ++count;
  }
  std::printf("%-16s %-7s %6.1f%%\n", "Average", "-",
              100.0 * avg / count);
  std::printf(
      "\nPowerLens transferred to '%s' with zero manual recalibration.\n",
      platform.name.c_str());
  return 0;
}
