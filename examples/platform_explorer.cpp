// Example: explore the simulated Jetson platforms.
//
// For each zoo model this prints the analytic time/power/energy-efficiency
// sweep across the GPU frequency ladder, the EE-optimal level, and the
// model's aggregate arithmetic intensity — the physics PowerLens exploits.
//
// Usage: platform_explorer [tx2|agx] [model_name]
#include "dnn/models.hpp"
#include "hw/analytic.hpp"

#include <cstdio>
#include <string>

using namespace powerlens;

namespace {

void sweep_model(const hw::Platform& platform, const dnn::Graph& graph) {
  const std::int64_t batch = graph.batch_size();
  std::printf("\n%s on %s  (%zu layers, %.2f GFLOPs/img, %.1f M params)\n",
              graph.name().c_str(), platform.name.c_str(), graph.size(),
              static_cast<double>(graph.total_flops()) /
                  (1e9 * static_cast<double>(batch)),
              static_cast<double>(graph.total_params()) / 1e6);
  std::printf("  %-6s %-10s %-10s %-10s %-12s\n", "level", "freq_MHz",
              "t_pass_ms", "power_W", "EE_img_per_J");

  const std::size_t cpu = platform.max_cpu_level();
  const std::size_t best = hw::optimal_gpu_level(platform, graph.layers(), cpu);
  for (std::size_t level = 0; level < platform.gpu_levels(); ++level) {
    const hw::BlockCost c =
        hw::analytic_block_cost(platform, graph.layers(), level, cpu);
    const double ee = static_cast<double>(batch) / c.energy_j;
    std::printf("  %-6zu %-10.1f %-10.2f %-10.2f %-12.3f%s\n", level,
                platform.gpu_freq(level) / 1e6, c.time_s * 1e3,
                c.avg_power_w(), ee, level == best ? "  <-- EE-optimal" : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "both";
  const std::string model = argc > 2 ? argv[2] : "";

  std::vector<hw::Platform> platforms;
  if (which == "tx2" || which == "both") platforms.push_back(hw::make_tx2());
  if (which == "agx" || which == "both") platforms.push_back(hw::make_agx());
  if (platforms.empty()) {
    std::fprintf(stderr, "usage: %s [tx2|agx|both] [model_name]\n", argv[0]);
    return 1;
  }

  for (const hw::Platform& p : platforms) {
    for (const dnn::ModelSpec& spec : dnn::model_zoo()) {
      if (!model.empty() && model != spec.name) continue;
      sweep_model(p, spec.build(/*batch=*/8));
    }
  }
  return 0;
}
