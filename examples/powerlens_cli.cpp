// powerlens_cli: the framework as a command-line tool.
//
//   powerlens_cli train    <tx2|agx> <models.txt> [num_networks]
//   powerlens_cli optimize <tx2|agx> <models.txt> <model> [batch]
//   powerlens_cli profile  <tx2|agx> <model> [level] [batch]
//   powerlens_cli run      <tx2|agx> <models.txt> <model> [passes] [batch]
//   powerlens_cli serve    <tx2|agx> <models.txt|-> [tasks] [policy]
//                          [workers] [rate_hz]
//   powerlens_cli models
//   powerlens_cli export-graph <model> <out.plbin> [batch]
//   powerlens_cli export-plans <tx2|agx> <models.txt> <out.plbin> [batch]
//   powerlens_cli export-costs <tx2|agx> <model> <out.plbin> [batch]
//   powerlens_cli import <file.plbin>
//
// `train` runs the offline phase and persists the trained bundle;
// `optimize` loads it and prints the instrumentation plan; `profile` dumps
// the per-layer roofline profile; `run` simulates deployment against the
// ondemand baseline; `serve` replays a seeded request stream over the whole
// model zoo through the serving engine (policy: powerlens|maxn|bim|fpg-g|
// fpg-cg; rate_hz 0 = closed loop, otherwise Poisson arrivals) and prints a
// JSON summary. Pass `-` for the bundle with non-powerlens policies.
//
// Every command also accepts the observability flags:
//   --trace <file>     Chrome/Perfetto trace (load in ui.perfetto.dev)
//   --metrics <file>   metrics snapshot (JSON; Prometheus text in <file>.prom)
//   --journal <file>   structured event journal (JSONL, one record per line;
//                      deterministic — byte-identical at any worker count)
//   --residuals <file> predicted-vs-observed residual snapshot (JSON)
//   --log-level <lvl>  off|error|warn|info|debug|trace (or env POWERLENS_LOG)
//
// `serve` additionally accepts:
//   --faults <spec>            deterministic hardware fault injection, e.g.
//                              "dvfs=0.1,sticky=0.2,thermal=0.5,seed=42"
//                              (keys: dvfs sticky thermal thermal_s
//                              thermal_cap telemetry latency latency_x seed)
//   --plan-cache-capacity <n>  bound resident plans with LRU eviction
//                              (0 = unbounded, the default)
//   --plan-snapshot <file>     warm-start the plan cache from an
//                              export-plans snapshot before serving — with
//                              full coverage, plan_cache_misses stays 0
//   --model-dir <dir>          deploy the *.plbin graphs in <dir> (sorted
//                              by filename) instead of the built-in zoo
//   --report-json <file>       also write the JSON report to <file>
//
// The export-* commands write versioned binary records (src/io, .plbin);
// `import` inspects and summarizes any of them. `export-plans` computes a
// plan per zoo model and snapshots them keyed by graph signature — the
// input for `serve --plan-snapshot`. The export batch size must match the
// serving batch size (10) for the signatures to line up.
#include "baselines/ondemand.hpp"
#include "core/metrics.hpp"
#include "core/powerlens.hpp"
#include "core/report.hpp"
#include "dnn/models.hpp"
#include "fault/fault_spec.hpp"
#include "hw/sim_engine.hpp"
#include "io/interchange.hpp"
#include "obs/setup.hpp"
#include "serve/model_dir.hpp"
#include "serve/adapt.hpp"
#include "serve/server.hpp"
#include "serve/signature.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

using namespace powerlens;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  powerlens_cli train    <tx2|agx> <models.txt> [networks]\n"
               "  powerlens_cli optimize <tx2|agx> <models.txt> <model> "
               "[batch]\n"
               "  powerlens_cli profile  <tx2|agx> <model> [level] [batch]\n"
               "  powerlens_cli run      <tx2|agx> <models.txt> <model> "
               "[passes] [batch]\n"
               "  powerlens_cli serve    <tx2|agx> <models.txt|-> [tasks] "
               "[powerlens|maxn|bim|fpg-g|fpg-cg] [workers] [rate_hz]\n"
               "  powerlens_cli models\n"
               "  powerlens_cli export-graph <model> <out.plbin> [batch]\n"
               "  powerlens_cli export-plans <tx2|agx> <models.txt> "
               "<out.plbin> [batch]\n"
               "  powerlens_cli export-costs <tx2|agx> <model> <out.plbin> "
               "[batch]\n"
               "  powerlens_cli import <file.plbin>\n"
               "common flags: --trace <file> --metrics <file> "
               "--journal <file> --residuals <file> "
               "--log-level <off|error|warn|info|debug|trace>\n"
               "serve flags:  --faults <spec> --plan-cache-capacity <n> "
               "--plan-snapshot <file> --model-dir <dir> "
               "--report-json <file> --adapt [--adapt-epoch <n>] "
               "[--retrain]\n");
  return 2;
}

// Serve-specific flags, stripped from argv before positional dispatch (the
// same contract as obs::extract_cli_flags).
struct ServeFlags {
  std::string faults;
  std::size_t plan_cache_capacity = 0;
  std::string plan_snapshot;
  std::string model_dir;
  std::string report_json;
  // Closed-loop adaptation (serve/adapt): drift-triggered re-planning at
  // epoch boundaries, plus optional background model retraining.
  bool adapt = false;
  std::size_t adapt_epoch = 32;
  bool retrain = false;
};

ServeFlags extract_serve_flags(int& argc, char** argv) {
  ServeFlags flags;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--faults" && i + 1 < argc) {
      flags.faults = argv[++i];
    } else if (arg == "--plan-cache-capacity" && i + 1 < argc) {
      flags.plan_cache_capacity =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--plan-snapshot" && i + 1 < argc) {
      flags.plan_snapshot = argv[++i];
    } else if (arg == "--model-dir" && i + 1 < argc) {
      flags.model_dir = argv[++i];
    } else if (arg == "--report-json" && i + 1 < argc) {
      flags.report_json = argv[++i];
    } else if (arg == "--adapt") {
      flags.adapt = true;
    } else if (arg == "--adapt-epoch" && i + 1 < argc) {
      flags.adapt_epoch = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--retrain") {
      flags.retrain = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return flags;
}

hw::Platform parse_platform(const std::string& name) {
  if (name == "tx2") return hw::make_tx2();
  if (name == "agx") return hw::make_agx();
  throw std::invalid_argument("unknown platform '" + name +
                              "' (expected tx2 or agx)");
}

int cmd_models() {
  for (const dnn::ModelSpec& spec : dnn::model_zoo()) {
    const dnn::Graph g = spec.build(1);
    std::printf("%-16s %5zu layers  %8.2f GFLOPs/img  %7.1f M params\n",
                spec.name.data(), g.size(),
                static_cast<double>(g.total_flops()) / 1e9,
                static_cast<double>(g.total_params()) / 1e6);
  }
  return 0;
}

int cmd_train(const hw::Platform& platform, const std::string& bundle,
              std::size_t networks) {
  core::PowerLensConfig cfg;
  cfg.dataset.num_networks = networks;
  core::PowerLens framework(platform, cfg);
  std::printf("training on %zu generated networks ...\n", networks);
  const core::TrainingSummary s = framework.train();
  framework.save_models(bundle);
  std::printf(
      "saved %s: hyper acc %.1f%%, decision acc %.1f%% (level err %.2f)\n",
      bundle.c_str(), 100.0 * s.hyper_model.test_accuracy,
      100.0 * s.decision_model.test_accuracy,
      s.decision_model.test_mean_level_error);
  return 0;
}

int cmd_optimize(const hw::Platform& platform, const std::string& bundle,
                 const std::string& model, std::int64_t batch) {
  core::PowerLens framework(platform, {});
  framework.load_models(bundle);
  const dnn::Graph g = dnn::make_model(model, batch);
  const core::OptimizationPlan plan = framework.optimize(g);
  core::write_plan_summary(std::cout, g, platform, plan);
  return 0;
}

int cmd_profile(const hw::Platform& platform, const std::string& model,
                std::size_t level, std::int64_t batch) {
  const dnn::Graph g = dnn::make_model(model, batch);
  core::write_layer_profile(std::cout, g, platform, level);
  return 0;
}

int cmd_run(const hw::Platform& platform, const std::string& bundle,
            const std::string& model, int passes, std::int64_t batch) {
  core::PowerLens framework(platform, {});
  framework.load_models(bundle);
  const dnn::Graph g = dnn::make_model(model, batch);
  const core::OptimizationPlan plan = framework.optimize(g);

  hw::SimEngine engine(platform);
  baselines::OndemandGovernor bim;
  hw::RunPolicy bim_policy = engine.default_policy();
  bim_policy.governor = &bim;
  bim_policy.trace_label = "ondemand";
  const hw::ExecutionResult r_bim = engine.run(g, passes, bim_policy);

  baselines::OndemandGovernor cpu_governor;
  hw::RunPolicy pl_policy = engine.default_policy();
  pl_policy.schedule = &plan.schedule;
  pl_policy.governor = &cpu_governor;
  pl_policy.trace_label = "powerlens";
  const hw::ExecutionResult r_pl = engine.run(g, passes, pl_policy);

  std::printf("%-10s %10s %10s %14s\n", "method", "time_s", "energy_J",
              "EE_img_per_J");
  std::printf("%-10s %10.2f %10.1f %14.3f\n", "ondemand", r_bim.time_s,
              r_bim.energy_j, r_bim.energy_efficiency());
  std::printf("%-10s %10.2f %10.1f %14.3f\n", "powerlens", r_pl.time_s,
              r_pl.energy_j, r_pl.energy_efficiency());
  std::printf("EE gain: %.1f%%\n", 100.0 * core::ee_gain(r_pl, r_bim));
  return 0;
}

int cmd_export_graph(const std::string& model, const std::string& out,
                     std::int64_t batch) {
  const dnn::Graph g = dnn::make_model(model, batch);
  io::save_graph(out, g);
  std::printf("wrote %s: graph '%s', %zu layers, signature %016llx\n",
              out.c_str(), g.name().c_str(), g.size(),
              static_cast<unsigned long long>(serve::graph_signature(g)));
  return 0;
}

int cmd_export_plans(const hw::Platform& platform, const std::string& bundle,
                     const std::string& out, std::int64_t batch) {
  core::PowerLens framework(platform, {});
  framework.load_models(bundle);
  std::vector<io::PlanRecord> records;
  for (const dnn::ModelSpec& spec : dnn::model_zoo()) {
    const dnn::Graph g = spec.build(batch);
    records.push_back(
        io::PlanRecord{serve::graph_signature(g), framework.optimize(g)});
  }
  io::save_plan_snapshot(out, records);
  std::printf("wrote %s: %zu plans (zoo at batch %lld on %s)\n", out.c_str(),
              records.size(), static_cast<long long>(batch),
              platform.name.c_str());
  return 0;
}

int cmd_export_costs(const hw::Platform& platform, const std::string& model,
                     const std::string& out, std::int64_t batch) {
  const dnn::Graph g = dnn::make_model(model, batch);
  const hw::CostTable table(platform, g.layers());
  io::save_cost_table(out, table);
  std::printf("wrote %s: cost table for '%s', %zu layers x %zu gpu levels\n",
              out.c_str(), g.name().c_str(), table.num_layers(),
              table.gpu_levels());
  return 0;
}

int cmd_import(const std::string& path) {
  const std::vector<std::byte> bytes = io::read_file(path);
  const io::RecordInfo info = io::inspect_record(bytes);
  switch (info.type) {
    case io::RecordType::kGraph: {
      const dnn::Graph g = io::load_graph(path);
      std::printf("%s: graph record, %zu payload bytes\n", path.c_str(),
                  info.payload_bytes);
      std::printf("  '%s': %zu layers, %.2f GFLOPs, %.1f M params, "
                  "signature %016llx\n",
                  g.name().c_str(), g.size(),
                  static_cast<double>(g.total_flops()) / 1e9,
                  static_cast<double>(g.total_params()) / 1e6,
                  static_cast<unsigned long long>(serve::graph_signature(g)));
      return 0;
    }
    case io::RecordType::kPlan: {
      // A plan file may be a single record or an export-plans snapshot;
      // the snapshot loader handles both.
      const std::vector<io::PlanRecord> records =
          io::load_plan_snapshot(path);
      std::printf("%s: %zu plan record%s\n", path.c_str(), records.size(),
                  records.size() == 1 ? "" : "s");
      for (const io::PlanRecord& r : records) {
        std::printf("  signature %016llx: %zu blocks, predicted %.4f s, "
                    "%.2f J per pass\n",
                    static_cast<unsigned long long>(r.graph_signature),
                    r.plan.view.block_count(), r.plan.predicted_pass_time_s,
                    r.plan.predicted_pass_energy_j);
      }
      return 0;
    }
    case io::RecordType::kCostTable: {
      const io::LoadedCostTable loaded = io::load_cost_table(path);
      std::printf("%s: cost-table record, %zu payload bytes (%s)\n",
                  path.c_str(), info.payload_bytes,
                  loaded.mmapped ? "zero-copy mmap" : "heap read");
      std::printf("  %zu layers x %zu gpu levels\n",
                  loaded.table.num_layers(), loaded.table.gpu_levels());
      return 0;
    }
  }
  std::fprintf(stderr, "error: %s: unknown record type\n", path.c_str());
  return 1;
}

serve::ServePolicy parse_policy(const std::string& name) {
  if (name == "powerlens") return serve::ServePolicy::kPowerLens;
  if (name == "maxn") return serve::ServePolicy::kMaxn;
  if (name == "bim") return serve::ServePolicy::kBiM;
  if (name == "fpg-g") return serve::ServePolicy::kFpgG;
  if (name == "fpg-cg") return serve::ServePolicy::kFpgCG;
  throw std::invalid_argument("unknown serve policy '" + name + "'");
}

int cmd_serve(const hw::Platform& platform, const std::string& bundle,
              std::size_t tasks, serve::ServePolicy policy,
              std::size_t workers, double rate_hz,
              const ServeFlags& flags) {
  core::PowerLens framework(platform, {});
  if (policy == serve::ServePolicy::kPowerLens) {
    if (bundle == "-") {
      throw std::invalid_argument(
          "serve: the powerlens policy needs a trained bundle (run "
          "`powerlens_cli train` first)");
    }
    framework.load_models(bundle);
  }

  constexpr std::int64_t kBatch = 10;
  std::vector<serve::DeployedModel> models;
  if (!flags.model_dir.empty()) {
    models = serve::load_model_population(flags.model_dir);
  } else {
    for (const dnn::ModelSpec& spec : dnn::model_zoo()) {
      models.push_back({std::string(spec.name), spec.build(kBatch)});
    }
  }

  serve::RequestStreamConfig stream_config;
  stream_config.num_tasks = tasks;
  if (rate_hz > 0.0) {
    stream_config.arrivals = serve::ArrivalProcess::kPoisson;
    stream_config.arrival_rate_hz = rate_hz;
  }
  const serve::RequestStream stream(models.size(), stream_config);

  serve::ServerConfig config;
  config.policy = policy;
  config.num_workers = workers;
  config.plan_cache_capacity = flags.plan_cache_capacity;
  if (!flags.faults.empty()) {
    config.faults = fault::FaultSpec::parse(flags.faults);
  }
  if (flags.adapt) {
    if (policy != serve::ServePolicy::kPowerLens) {
      throw std::invalid_argument(
          "serve: --adapt requires the powerlens policy");
    }
    config.adapt_enabled = true;
    config.adapt_epoch_tasks = flags.adapt_epoch;
    config.adapt_retrain = flags.retrain;
  }
  serve::Server server(platform, std::move(models), config, &framework);
  if (!flags.plan_snapshot.empty()) {
    const std::size_t installed =
        server.warm_start_from_snapshot(flags.plan_snapshot);
    std::fprintf(stderr, "warm start: %zu plans preloaded from %s\n",
                 installed, flags.plan_snapshot.c_str());
  }
  const serve::ServeReport report = server.serve(stream);

  std::printf("%zu tasks on %s under %s: %.1f J, makespan %.2f s, EE %.4f "
              "img/J, p99 latency %.3f s\n",
              report.total_tasks, report.platform.c_str(),
              report.policy.c_str(), report.energy_j, report.makespan_s,
              report.energy_efficiency(), report.latency_p99_s);
  if (config.faults.active()) {
    std::printf("faults: %zu dvfs failed, %zu thermal, %zu telemetry "
                "dropped, %zu inflated; recovery: %zu retries, %zu "
                "fallbacks, %.2f s backoff\n",
                report.faults.dvfs_failed, report.faults.thermal_events,
                report.faults.telemetry_dropped,
                report.faults.latency_inflated, report.retries,
                report.fallbacks, report.backoff_s);
  }
  if (report.residual_scored > 0) {
    std::printf("prediction residuals over %zu requests: latency %+.1f%%, "
                "energy %+.1f%% (observed vs predicted)\n",
                report.residual_scored,
                report.latency_residual_mean * 100.0,
                report.energy_residual_mean * 100.0);
  }
  if (const serve::AdaptController* adapt = server.adapt_controller()) {
    std::printf("adaptation: %llu epochs, %llu re-plans, %llu retrain "
                "rounds, %llu model swaps\n",
                static_cast<unsigned long long>(adapt->epochs()),
                static_cast<unsigned long long>(adapt->replans()),
                static_cast<unsigned long long>(adapt->retrain_rounds()),
                static_cast<unsigned long long>(adapt->model_swaps()));
  }
  report.write_json(std::cout);
  if (!flags.report_json.empty()) {
    std::ofstream os(flags.report_json);
    if (!os) {
      throw std::runtime_error("serve: cannot open '" + flags.report_json +
                               "' for writing");
    }
    report.write_json(os);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const obs::ObsOptions obs_options = obs::extract_cli_flags(argc, argv);
  const obs::ObsScope obs_scope(obs_options);
  const ServeFlags serve_flags = extract_serve_flags(argc, argv);
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "models") return cmd_models();
    if (cmd == "train" && argc >= 4) {
      return cmd_train(parse_platform(argv[2]), argv[3],
                       argc > 4 ? static_cast<std::size_t>(std::atoll(argv[4]))
                                : 300);
    }
    if (cmd == "optimize" && argc >= 5) {
      return cmd_optimize(parse_platform(argv[2]), argv[3], argv[4],
                          argc > 5 ? std::atoll(argv[5]) : 8);
    }
    if (cmd == "profile" && argc >= 4) {
      const hw::Platform p = parse_platform(argv[2]);
      return cmd_profile(
          p, argv[3],
          argc > 4 ? static_cast<std::size_t>(std::atoll(argv[4]))
                   : p.gpu_levels() / 2,
          argc > 5 ? std::atoll(argv[5]) : 8);
    }
    if (cmd == "run" && argc >= 5) {
      return cmd_run(parse_platform(argv[2]), argv[3], argv[4],
                     argc > 5 ? std::atoi(argv[5]) : 30,
                     argc > 6 ? std::atoll(argv[6]) : 8);
    }
    if (cmd == "export-graph" && argc >= 4) {
      return cmd_export_graph(argv[2], argv[3],
                              argc > 4 ? std::atoll(argv[4]) : 8);
    }
    if (cmd == "export-plans" && argc >= 5) {
      return cmd_export_plans(parse_platform(argv[2]), argv[3], argv[4],
                              argc > 5 ? std::atoll(argv[5]) : 10);
    }
    if (cmd == "export-costs" && argc >= 5) {
      return cmd_export_costs(parse_platform(argv[2]), argv[3], argv[4],
                              argc > 5 ? std::atoll(argv[5]) : 8);
    }
    if (cmd == "import" && argc >= 3) {
      return cmd_import(argv[2]);
    }
    if (cmd == "serve" && argc >= 4) {
      return cmd_serve(
          parse_platform(argv[2]), argv[3],
          argc > 4 ? static_cast<std::size_t>(std::atoll(argv[4])) : 100,
          parse_policy(argc > 5 ? argv[5] : "powerlens"),
          argc > 6 ? static_cast<std::size_t>(std::atoll(argv[6])) : 4,
          argc > 7 ? std::atof(argv[7]) : 0.0, serve_flags);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
